"""The crossbar matrix (CM, "defect map") of the paper's §IV-B.

The CM records which crosspoints of a fabricated crossbar are functional:
1 entries can be programmed to either polarity (so they can satisfy both
0 and 1 entries of the function matrix), 0 entries are stuck-open and can
only coincide with FM entries that need no device.  Rows and columns
poisoned by stuck-closed defects cannot be used at all and are tracked
separately (the mapper refuses to place anything on them).
"""

from __future__ import annotations

import numpy as np

from repro.defects.defect_map import DefectMap
from repro.exceptions import MappingError


class CrossbarMatrix:
    """Binary availability matrix of a (possibly defective) crossbar."""

    def __init__(self, defect_map: DefectMap):
        self._defect_map = defect_map
        self._matrix = np.array(defect_map.functional_matrix(), dtype=np.uint8)
        self._closed_rows = frozenset(defect_map.stuck_closed_rows())
        self._closed_columns = frozenset(defect_map.stuck_closed_columns())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def perfect(cls, rows: int, columns: int) -> "CrossbarMatrix":
        """A defect-free crossbar matrix of the given size."""
        return cls(DefectMap(rows, columns))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def defect_map(self) -> DefectMap:
        """The underlying defect map."""
        return self._defect_map

    @property
    def matrix(self) -> np.ndarray:
        """The 0/1 availability matrix (1 = functional crosspoint)."""
        return self._matrix

    @property
    def rows(self) -> int:
        """Number of horizontal lines."""
        return self._matrix.shape[0]

    @property
    def columns(self) -> int:
        """Number of vertical lines."""
        return self._matrix.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns)."""
        return tuple(self._matrix.shape)

    @property
    def stuck_closed_rows(self) -> frozenset[int]:
        """Rows unusable because they contain a stuck-closed device."""
        return self._closed_rows

    @property
    def stuck_closed_columns(self) -> frozenset[int]:
        """Columns unusable because they contain a stuck-closed device."""
        return self._closed_columns

    def usable_rows(self) -> list[int]:
        """Row indices that may receive a function-matrix row."""
        return [row for row in range(self.rows) if row not in self._closed_rows]

    def row(self, index: int) -> np.ndarray:
        """Availability of one horizontal line."""
        if not 0 <= index < self.rows:
            raise MappingError(f"row index {index} out of range")
        return self._matrix[index]

    def row_is_usable(self, index: int) -> bool:
        """False when the row is poisoned by a stuck-closed defect."""
        return index not in self._closed_rows

    def columns_are_usable(self, required_columns: int | None = None) -> bool:
        """True when no column (of the required span) is poisoned.

        With optimum-size crossbars every column is needed, so any
        stuck-closed column makes mapping impossible; redundancy studies
        pass the number of columns actually required.
        """
        if not self._closed_columns:
            return True
        if required_columns is None:
            required_columns = self.columns
        return all(column >= required_columns for column in self._closed_columns)

    def functional_count(self) -> int:
        """Number of functional crosspoints."""
        return int(self._matrix.sum())

    def defect_rate(self) -> float:
        """Observed defect rate of the crossbar."""
        return self._defect_map.defect_rate()

    def __repr__(self) -> str:
        return (
            f"CrossbarMatrix({self.rows}x{self.columns}, "
            f"defects={self._defect_map.defect_count()}, "
            f"closed_rows={len(self._closed_rows)}, "
            f"closed_columns={len(self._closed_columns)})"
        )
