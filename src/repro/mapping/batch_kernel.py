"""Vectorized batch Monte-Carlo mapping kernel.

The serial Monte-Carlo path (the *reference engine*) materialises one
:class:`~repro.defects.defect_map.DefectMap`, one
:class:`~repro.mapping.crossbar_matrix.CrossbarMatrix` and one full
mapper invocation per sample.  This module is the *vectorized engine*:
a chunk of samples is generated as one ``(samples, rows, columns)``
tensor (:class:`~repro.defects.batch.DefectBatch`, seeded per-sample
from the same :func:`~repro.api.seeding.derive_seed` stream, so the
defect maps are bit-identical), every compatibility matrix is built in
one broadcasted ``fm & ~cm`` pass
(:func:`~repro.mapping.matching.compatibility_tensor`), and a cheap
counting pre-screen decides many samples without ever invoking a
per-sample mapper.  Only undecided samples fall through — and even those
run against the precomputed compatibility tensor instead of rebuilding
it from objects.

Statistics invariance
---------------------
The engine's contract is that the *counting statistics* — samples,
successes, backtracks, invalid mappings — are identical to the reference
engine for every sample, not just in aggregate.  The pre-screen
therefore only takes decisions that are provably neutral for the mapper
at hand:

* **structural rejects** (too few rows/columns, poisoned required
  column, too few usable rows) mirror
  :func:`~repro.mapping.matching.quick_infeasibility_check`, which every
  built-in mapper applies *before* doing any counted work;
* **degree-zero rejects** (some FM row fits no usable crossbar row) are
  applied to the exact mapper (which never backtracks) and to the greedy
  mapper (whose backtrack counter is structurally zero); for the hybrid
  mapper they are only applied when the minterm stage is additionally
  guaranteed backtrack-free, because an early backtrack followed by a
  later dead end must still be counted;
* **counting accepts** use first-fit/Hall-style bounds under which the
  real mapper is guaranteed to succeed *without a single backtrack*:
  every minterm row ``i`` (in placement order) compatible with more than
  ``i`` usable rows, and every output row compatible with at least
  ``num_rows`` usable rows.

Samples the bounds cannot decide are mapped by NumPy replicas of the
built-in algorithms (first-fit with the paper's one-step backtracking,
including its exact backtrack-counting semantics, plus the zero-cost
assignment step) operating on the shared compatibility tensor.  Mappers
that are not recognised built-ins — anything registered by third parties
— transparently fall back to the per-sample object path, so the engine
is safe for *every* mapper in the registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.boolean.function import BooleanFunction
from repro.defects.batch import DefectBatch
from repro.exceptions import MappingError
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.exact import ExactMapper
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.hybrid import GreedyMapper, HybridMapper
from repro.mapping.matching import compatibility_tensor
from repro.mapping.munkres import zero_cost_assignment
from repro.mapping.validate import validate_assignment

try:  # SciPy's Hopcroft-Karp is the fast path; Munkres the fallback.
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching
except ImportError:  # pragma: no cover - exercised via the fallback branch
    csr_matrix = None
    maximum_bipartite_matching = None

#: Decision codes recorded per (mapper, sample) — how the engine settled it.
DECISION_REPAIR_DROP = -2  #: spare-column repair left too few columns
DECISION_REJECT = -1  #: counting pre-screen proved failure
DECISION_ACCEPT = 1  #: counting pre-screen proved success
DECISION_KERNEL = 2  #: NumPy replica of the built-in algorithm ran
DECISION_OBJECT = 3  #: per-sample object-path fallback (opaque mapper)
DECISION_COMPILED = 4  #: native replica batch (``engine="compiled"``)

#: Engines this module can run a batch on.
BATCH_ENGINES = ("vectorized", "compiled")

#: Upper bound on compatibility-tensor cells per sub-batch (keeps the
#: broadcasted pass cache- and memory-friendly for the largest circuits).
MAX_TENSOR_CELLS = 8_000_000


def mapper_kind(mapper) -> str | None:
    """Classify a mapper for the pre-screen: built-in kind or ``None``.

    Only *exact* types are recognised — a subclass may override anything,
    so it is treated as opaque and runs on the object path.
    """
    if type(mapper) is ExactMapper:
        return "exact"
    if type(mapper) is GreedyMapper:
        return "greedy"
    if type(mapper) is HybridMapper:
        return "hybrid" if mapper._backtracking else "greedy"
    return None


@dataclass
class MapperBatchOutcome:
    """Per-sample results of one mapper over one batch.

    All arrays are indexed by chunk offset (``global index - start``).
    ``runtime`` carries only the per-sample work attributable to this
    mapper; the shared batched stages are reported once in
    :attr:`BatchMapResult.shared_seconds`.
    """

    algorithm: str
    success: np.ndarray
    backtracks: np.ndarray
    invalid: np.ndarray
    runtime: np.ndarray
    decision: np.ndarray

    @property
    def samples(self) -> int:
        """Number of samples in the batch."""
        return int(self.success.shape[0])

    def decided(self) -> int:
        """Samples settled by the pre-screen alone (no mapper work)."""
        return int(
            np.isin(
                self.decision, (DECISION_ACCEPT, DECISION_REJECT, DECISION_REPAIR_DROP)
            ).sum()
        )

    def counting_statistics(self) -> dict:
        """The wall-clock-free aggregate the determinism contract covers."""
        return {
            "successes": int(self.success.sum()),
            "samples": self.samples,
            "total_backtracks": int(self.backtracks.sum()),
            "invalid_mappings": int(self.invalid.sum()),
        }


@dataclass
class BatchMapResult:
    """All mappers' per-sample results for one chunk of the sample stream."""

    start: int
    stop: int
    outcomes: dict[str, MapperBatchOutcome]
    shared_seconds: float

    def counting_statistics(self) -> dict:
        """Per-mapper counting statistics (for tests and reports)."""
        return {
            name: outcome.counting_statistics()
            for name, outcome in self.outcomes.items()
        }


def map_sample_batch(
    function: BooleanFunction | FunctionMatrix,
    mappers: dict,
    model,
    *,
    rows: int,
    columns: int,
    seed: int = 0,
    start: int = 0,
    stop: int | None = None,
    sample_size: int | None = None,
    validate: bool = True,
    max_tensor_cells: int = MAX_TENSOR_CELLS,
    batch: DefectBatch | None = None,
    engine: str = "vectorized",
) -> BatchMapResult:
    """Map one chunk of the Monte-Carlo sample stream, vectorized.

    Parameters
    ----------
    function:
        The design to map (a :class:`FunctionMatrix` is accepted to skip
        re-synthesis).
    mappers:
        ``{label: mapper instance}`` as produced by
        :func:`repro.api.registry.resolve_mappers`.
    model:
        A defect model with the ``inject(rows, columns, seed=...)``
        protocol; every sample ``i`` is seeded ``derive_seed(seed, i)``
        exactly like the reference engine.  Ignored when ``batch`` is
        given.
    rows / columns:
        Physical crossbar dimensions (optimum size plus redundancy).
    start / stop / sample_size:
        Global sample-index range; ``sample_size`` is a convenience for
        ``stop = start + sample_size``.
    validate:
        Double-check successful mappings and count violations separately
        (mirrors the reference engine's flag).
    max_tensor_cells:
        Sub-batch cap on ``samples x rows x fm_rows`` cells.
    batch:
        A pre-built :class:`~repro.defects.batch.DefectBatch` covering
        ``[start, stop)`` to map against instead of injecting one here.
        The multi-level pipeline uses this to slice per-stage row banks
        out of one shared full-array tensor; the caller is responsible
        for any spare-column repair having already happened.
    engine:
        ``"vectorized"`` (default) settles undecided samples with the
        NumPy replicas below; ``"compiled"`` batches them through the
        native kernels of :mod:`repro.compiled` instead (one call per
        mapper per sub-batch).  Identical counting statistics either
        way; when no compiled backend is loadable in this process the
        NumPy replicas transparently take over.
    """
    if engine not in BATCH_ENGINES:
        raise MappingError(
            f"unknown batch engine {engine!r}; expected one of "
            f"{list(BATCH_ENGINES)}"
        )
    if stop is None:
        if sample_size is None:
            raise MappingError("map_sample_batch needs stop= or sample_size=")
        stop = start + sample_size
    if stop < start:
        raise MappingError(f"invalid sample range [{start}, {stop})")

    fm = function if isinstance(function, FunctionMatrix) else FunctionMatrix(function)
    count = stop - start

    shared_start = time.perf_counter()
    if batch is None:
        batch = DefectBatch.generate(
            model,
            rows,
            columns,
            seed=seed,
            start=start,
            stop=stop,
            required_columns=fm.num_columns,
        )
    elif (batch.stop - batch.start) != count:
        raise MappingError(
            f"pre-built batch covers {batch.stop - batch.start} samples, "
            f"expected {count}"
        )

    outcomes = {
        name: MapperBatchOutcome(
            algorithm=name,
            success=np.zeros(count, dtype=bool),
            backtracks=np.zeros(count, dtype=np.int64),
            invalid=np.zeros(count, dtype=bool),
            runtime=np.zeros(count, dtype=np.float64),
            decision=np.zeros(count, dtype=np.int8),
        )
        for name in mappers
    }
    for outcome in outcomes.values():
        outcome.decision[batch.dropped] = DECISION_REPAIR_DROP

    active = np.flatnonzero(~batch.dropped)
    if active.size == 0:
        return BatchMapResult(
            start=start,
            stop=stop,
            outcomes=outcomes,
            shared_seconds=time.perf_counter() - shared_start,
        )

    # Structural screen — the vectorized quick_infeasibility_check.  The
    # built-in mappers return an uncounted failure in exactly these
    # cases, so deciding them here is statistics-neutral.
    num_rows_needed = fm.num_rows
    structurally_ok = np.ones(count, dtype=bool)
    if batch.rows < num_rows_needed or batch.columns < fm.num_columns:
        structurally_ok[:] = False
    else:
        structurally_ok &= batch.columns_usable(fm.num_columns)
        structurally_ok &= batch.usable_row_counts() >= num_rows_needed

    kinds = {name: mapper_kind(mapper) for name, mapper in mappers.items()}
    opaque = [name for name, kind in kinds.items() if kind is None]
    builtin = [name for name, kind in kinds.items() if kind is not None]

    shared_seconds = time.perf_counter() - shared_start

    kernels = None
    if engine == "compiled":
        from repro.compiled import get_kernels

        kernels = get_kernels()

    if builtin:
        shared_seconds += _run_builtin_mappers(
            fm,
            batch,
            {name: mappers[name] for name in builtin},
            kinds,
            outcomes,
            active,
            structurally_ok,
            validate=validate,
            max_tensor_cells=max_tensor_cells,
            kernels=kernels,
        )
    if opaque:
        _run_object_fallback(
            fm,
            batch,
            {name: mappers[name] for name in opaque},
            outcomes,
            active,
            validate=validate,
        )

    return BatchMapResult(
        start=start, stop=stop, outcomes=outcomes, shared_seconds=shared_seconds
    )


# ----------------------------------------------------------------------
# Built-in mapper path: shared compatibility tensor + counting pre-screen
# + NumPy replicas for the undecided remainder.
# ----------------------------------------------------------------------
def _run_builtin_mappers(
    fm: FunctionMatrix,
    batch: DefectBatch,
    mappers: dict,
    kinds: dict,
    outcomes: dict,
    active: np.ndarray,
    structurally_ok: np.ndarray,
    *,
    validate: bool,
    max_tensor_cells: int,
    kernels=None,
) -> float:
    """Pre-screen and map all built-in mappers; returns shared stage time.

    ``kernels`` is the loaded :mod:`repro.compiled` backend (or
    ``None``): when given, every mapper's undecided samples are settled
    by one native batch call instead of the per-sample NumPy replicas.
    """
    num_minterms = fm.num_minterm_rows
    num_rows_needed = fm.num_rows
    # Guaranteed backtrack-free first-fit: minterm row i always finds a
    # free compatible row when it is compatible with more than i usable
    # rows (at most i are occupied when it is placed).
    first_fit_bound = np.arange(1, num_minterms + 1, dtype=np.int64)

    sub_size = max(1, max_tensor_cells // max(1, batch.rows * num_rows_needed))
    shared_seconds = 0.0

    for lo in range(0, active.size, sub_size):
        idx = active[lo : lo + sub_size]

        shared_start = time.perf_counter()
        compat = compatibility_tensor(fm.matrix, batch.functional[idx])
        # Rows poisoned by stuck-closed defects can never host anything.
        compat &= ~batch.closed_rows[idx][:, :, None]
        degrees = compat.sum(axis=1, dtype=np.int64)
        minterm_deg = degrees[:, :num_minterms]
        output_deg = degrees[:, num_minterms:]

        screen_ok = structurally_ok[idx]
        minterm_prefix_ok = (minterm_deg >= first_fit_bound).all(axis=1)
        outputs_hall_ok = (output_deg >= num_rows_needed).all(axis=1)
        accept_first_fit = screen_ok & minterm_prefix_ok & outputs_hall_ok
        any_degree_zero = (degrees == 0).any(axis=1)
        shared_seconds += time.perf_counter() - shared_start

        for name, mapper in mappers.items():
            kind = kinds[name]
            outcome = outcomes[name]
            if kind == "exact":
                accept = screen_ok & (degrees >= num_rows_needed).all(axis=1)
                reject = ~screen_ok | any_degree_zero
            elif kind == "greedy":
                accept = accept_first_fit
                reject = ~screen_ok | any_degree_zero
            else:  # hybrid: rejects must be provably backtrack-free
                accept = accept_first_fit
                reject = ~screen_ok | (
                    minterm_prefix_ok & (output_deg == 0).any(axis=1)
                )
            accept &= ~reject

            outcome.success[idx] = accept
            outcome.decision[idx[accept]] = DECISION_ACCEPT
            outcome.decision[idx[reject]] = DECISION_REJECT

            undecided = np.flatnonzero(~accept & ~reject)
            if kernels is not None and undecided.size:
                kernel_start = time.perf_counter()
                # (U, F, H) row-contiguous per FM row, like the
                # replicas' compat_rows view — one native call settles
                # every undecided sample of this mapper.
                sub_compat = np.ascontiguousarray(
                    np.transpose(compat[undecided], (0, 2, 1)),
                    dtype=np.uint8,
                )
                closed = batch.closed_rows[idx[undecided]]
                success, backtracks, valid = kernels.map_builtin_batch(
                    sub_compat,
                    closed,
                    num_minterms,
                    kind=kind,
                    check_validity=validate,
                )
                offsets = idx[undecided]
                succeeded = success.astype(bool)
                outcome.backtracks[offsets] = backtracks
                if validate:
                    invalid = succeeded & ~valid.astype(bool)
                    outcome.invalid[offsets[invalid]] = True
                    outcome.success[offsets] = succeeded & ~invalid
                else:
                    outcome.success[offsets] = succeeded
                outcome.decision[offsets] = DECISION_COMPILED
                outcome.runtime[offsets] += (
                    time.perf_counter() - kernel_start
                ) / undecided.size
                continue
            for k in undecided:
                offset = int(idx[k])
                sample_start = time.perf_counter()
                usable_rows = np.flatnonzero(~batch.closed_rows[offset])
                # Row-contiguous (R, H) view: replicas index by FM row.
                compat_rows = np.ascontiguousarray(compat[k].T)
                if kind == "exact":
                    success, backtracks, valid = _replica_exact(
                        compat_rows, usable_rows
                    )
                else:
                    success, backtracks, valid = _replica_hybrid(
                        compat_rows,
                        usable_rows,
                        num_minterms,
                        backtracking=kind == "hybrid",
                        check_validity=validate,
                    )
                outcome.backtracks[offset] = backtracks
                if success and validate and not valid:
                    outcome.invalid[offset] = True
                else:
                    outcome.success[offset] = success
                outcome.decision[offset] = DECISION_KERNEL
                outcome.runtime[offset] += time.perf_counter() - sample_start
    return shared_seconds


def _saturating_matching(compat_sub: np.ndarray) -> np.ndarray | None:
    """A matching covering every *row* of a boolean biadjacency matrix.

    Returns the matched column of every row, or ``None`` when no such
    matching exists.  A zero-cost assignment exists iff a perfect
    matching of the FM rows does, so existence-only questions run on
    SciPy's C Hopcroft-Karp instead of the O(n^3) Hungarian solver; the
    dependency-free Munkres path answers identically when SciPy is
    unavailable.
    """
    num_left, num_right = compat_sub.shape
    if num_left > num_right:
        return None
    if num_left == 0:
        return np.zeros(0, dtype=np.int64)
    if maximum_bipartite_matching is not None:
        matched = maximum_bipartite_matching(
            csr_matrix(compat_sub), perm_type="column"
        )
        if (matched < 0).any():
            return None
        return matched.astype(np.int64)
    costs = np.where(compat_sub.T, 0, 1).astype(np.int64)
    assignment = zero_cost_assignment(costs)
    if assignment is None:
        return None
    result = np.full(num_left, -1, dtype=np.int64)
    for left, right in assignment.items():
        result[left] = right
    return result


def _replica_exact(
    compat_rows: np.ndarray, usable_rows: np.ndarray
) -> tuple[bool, int, bool]:
    """The exact mapper's decision on a precomputed compatibility matrix.

    A mapping exists iff a zero-cost assignment over all FM rows and all
    usable crossbar rows exists, which is iff the FM rows admit a
    saturating matching — identical to
    :class:`~repro.mapping.exact.ExactMapper`, which never backtracks.
    """
    matching = _saturating_matching(compat_rows[:, usable_rows])
    return matching is not None, 0, True


def _replica_hybrid(
    compat_rows: np.ndarray,
    usable_rows: np.ndarray,
    num_minterms: int,
    *,
    backtracking: bool,
    check_validity: bool,
) -> tuple[bool, int, bool]:
    """NumPy replica of HBA's matcher + output assignment.

    Reproduces :class:`~repro.mapping.heuristic.HeuristicMatcher`
    decision-for-decision — top-to-bottom first fit, one-step
    backtracking over matched rows in row order, relocation of the
    displaced product — including the exact points at which the
    reference implementation increments its backtrack counter.
    """
    num_rows = compat_rows.shape[1]
    free = np.zeros(num_rows, dtype=bool)
    free[usable_rows] = True
    owner = np.full(num_rows, -1, dtype=np.int64)
    assigned_row = np.full(compat_rows.shape[0], -1, dtype=np.int64)
    backtracks = 0

    for fm_index in range(num_minterms):
        compatible = compat_rows[fm_index]
        placed = _first_free(free, compatible)
        if placed < 0 and backtracking:
            for matched in np.flatnonzero(~free & compatible):
                # Only usable rows are ever occupied, so ~free & compatible
                # walks exactly the matched rows the reference visits.
                backtracks += 1
                occupant = owner[matched]
                relocation = _first_free(free, compat_rows[occupant])
                if relocation < 0:
                    continue
                owner[relocation] = occupant
                assigned_row[occupant] = relocation
                free[relocation] = False
                placed = int(matched)
                break
        if placed < 0:
            return False, backtracks, True
        owner[placed] = fm_index
        assigned_row[fm_index] = placed
        free[placed] = False

    unmatched = np.flatnonzero(free)
    num_outputs = compat_rows.shape[0] - num_minterms
    if unmatched.size < num_outputs:
        return False, backtracks, True
    if num_outputs:
        matching = _saturating_matching(compat_rows[num_minterms:][:, unmatched])
        if matching is None:
            return False, backtracks, True
        assigned_row[num_minterms:] = unmatched[matching]

    valid = True
    if check_validity:
        # The vectorized counterpart of validate_assignment: injective,
        # usable rows only (by construction), every pair compatible.
        valid = bool(
            len(np.unique(assigned_row)) == assigned_row.size
            and compat_rows[np.arange(assigned_row.size), assigned_row].all()
        )
    return True, backtracks, valid


def _first_free(free: np.ndarray, compatible: np.ndarray) -> int:
    """Lowest-index free compatible row, or -1 — the first-fit primitive."""
    candidates = free & compatible
    index = int(np.argmax(candidates))
    return index if candidates[index] else -1


# ----------------------------------------------------------------------
# Opaque mappers: per-sample object path, byte-for-byte the reference
# engine's loop, so third-party mappers keep their exact semantics.
# ----------------------------------------------------------------------
def _run_object_fallback(
    fm: FunctionMatrix,
    batch: DefectBatch,
    mappers: dict,
    outcomes: dict,
    active: np.ndarray,
    *,
    validate: bool,
) -> None:
    for offset in active:
        defect_map = batch.maps[int(offset)]
        crossbar_matrix = CrossbarMatrix(defect_map)
        for name, mapper in mappers.items():
            outcome = outcomes[name]
            mapping = mapper.map(fm, crossbar_matrix)
            outcome.runtime[offset] += mapping.runtime_seconds
            outcome.backtracks[offset] = mapping.statistics.backtracks
            outcome.decision[offset] = DECISION_OBJECT
            if mapping.success:
                if validate and not validate_assignment(
                    fm, crossbar_matrix, mapping
                ):
                    outcome.invalid[offset] = True
                else:
                    outcome.success[offset] = True
