"""Validation of defect-tolerant mappings.

Two independent checks are provided:

* :func:`validate_assignment` — the matrix-level check the paper's
  algorithms themselves use: every required device of every function-
  matrix row must land on a functional crosspoint of its assigned
  crossbar row, rows must be distinct and must avoid stuck-closed lines;
* :func:`validate_functionally` — an end-to-end check that programs the
  permuted layout onto a defective array and simulates it, confirming
  that the mapped crossbar still computes the original Boolean function.
  This is stronger than anything in the paper and guards the whole
  pipeline (function → design → mapping → physical array → simulation).
"""

from __future__ import annotations

from repro.boolean.function import BooleanFunction
from repro.boolean.truth_table import (
    verification_assignment_matrix,
    verification_assignments,
)
from repro.crossbar.simulator import (
    SIMULATOR_ENGINES,
    evaluate_two_level,
    evaluate_two_level_batch,
)
from repro.crossbar.two_level import TwoLevelDesign
from repro.exceptions import CrossbarError
from repro.defects.defect_map import DefectMap
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.matching import rows_compatible
from repro.mapping.result import MappingResult


def validate_assignment(
    function_matrix: FunctionMatrix,
    crossbar_matrix: CrossbarMatrix,
    result: MappingResult,
) -> bool:
    """Matrix-level validity check of a mapping result."""
    if not result.success:
        return False
    assignment = result.row_assignment
    if len(assignment) != function_matrix.num_rows:
        return False
    if not result.validate_injective():
        return False
    closed_rows = crossbar_matrix.stuck_closed_rows
    if not crossbar_matrix.columns_are_usable(function_matrix.num_columns):
        return False
    for fm_row, cm_row in assignment.items():
        if not 0 <= cm_row < crossbar_matrix.rows:
            return False
        if cm_row in closed_rows:
            return False
        if not rows_compatible(
            function_matrix.row(fm_row), crossbar_matrix.row(cm_row)
        ):
            return False
    return True


def validate_functionally(
    function: BooleanFunction,
    defect_map: DefectMap,
    result: MappingResult,
    *,
    exhaustive_limit: int = 10,
    samples: int = 128,
    engine: str = "auto",
) -> bool:
    """End-to-end check: simulate the mapped design on the defective array.

    The two-level layout is permuted according to the mapping, programmed
    onto an array carrying the defect map, and evaluated against the
    source function on exhaustive (small inputs) or sampled assignments.
    ``engine`` selects the batched tensor simulation (the default, one
    vectorized pass over the whole assignment stream) or the scalar
    object walk; both answer identically.
    """
    if engine not in SIMULATOR_ENGINES:
        raise CrossbarError(
            f"unknown simulator engine {engine!r}; expected one of "
            f"{list(SIMULATOR_ENGINES)}"
        )
    if not result.success:
        return False
    design = TwoLevelDesign(function)
    try:
        permuted = design.layout.with_row_assignment(result.row_assignment)
    except Exception:
        return False
    array = defect_map.to_array()
    array.program_active(permuted.active_crosspoints)
    if engine != "object":
        from repro.boolean.packed import evaluate_function_batch

        batch = verification_assignment_matrix(
            function.num_inputs,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
        )
        simulated = evaluate_two_level_batch(permuted, batch, array=array)
        expected = evaluate_function_batch(function, batch)
        return bool((simulated == expected).all())
    for assignment in verification_assignments(
        function.num_inputs, exhaustive_limit=exhaustive_limit, samples=samples
    ):
        simulated = evaluate_two_level(permuted, assignment, array=array)
        expected = [1 if value else 0 for value in function.evaluate(assignment)]
        if simulated.outputs != expected:
            return False
    return True


def validate_both(
    function: BooleanFunction,
    defect_map: DefectMap,
    result: MappingResult,
    *,
    exhaustive_limit: int = 10,
    samples: int = 128,
) -> bool:
    """Run the matrix-level and functional checks together."""
    function_matrix = FunctionMatrix(function)
    crossbar_matrix = CrossbarMatrix(defect_map)
    if not validate_assignment(function_matrix, crossbar_matrix, result):
        return False
    return validate_functionally(
        function,
        defect_map,
        result,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
    )
