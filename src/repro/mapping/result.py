"""Result objects returned by the defect-tolerant mapping algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MappingError


@dataclass
class MappingStatistics:
    """Counters describing how hard the mapper had to work."""

    compatibility_checks: int = 0
    backtracks: int = 0
    assignment_size: tuple[int, int] | None = None
    matching_matrix_entries: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "compatibility_checks": self.compatibility_checks,
            "backtracks": self.backtracks,
            "assignment_size": (
                list(self.assignment_size) if self.assignment_size else None
            ),
            "matching_matrix_entries": self.matching_matrix_entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MappingStatistics":
        """Rebuild statistics serialized by :meth:`to_dict`."""
        size = payload.get("assignment_size")
        return cls(
            compatibility_checks=payload.get("compatibility_checks", 0),
            backtracks=payload.get("backtracks", 0),
            assignment_size=tuple(size) if size else None,
            matching_matrix_entries=payload.get("matching_matrix_entries", 0),
        )


@dataclass
class MappingResult:
    """Outcome of one defect-tolerant mapping attempt.

    Attributes
    ----------
    success:
        True when a complete, defect-avoiding row assignment was found.
    algorithm:
        ``"hybrid"`` (HBA), ``"exact"`` (EA), ``"greedy"`` or
        ``"naive"`` — whichever mapper produced the result.
    row_assignment:
        Mapping from function-matrix row index (products first, then
        outputs) to the physical crossbar row hosting it; empty when the
        attempt failed.
    failure_reason:
        Human-readable reason when ``success`` is False.
    runtime_seconds:
        Wall-clock time of the mapping attempt.
    used_complement:
        True when the mapped implementation is the complemented circuit
        (the paper's dual optimisation).
    statistics:
        Work counters (backtracks, matrix sizes, …) for the ablation and
        runtime analyses.
    """

    success: bool
    algorithm: str
    row_assignment: dict[int, int] = field(default_factory=dict)
    failure_reason: str = ""
    runtime_seconds: float = 0.0
    used_complement: bool = False
    statistics: MappingStatistics = field(default_factory=MappingStatistics)

    def assigned_rows(self) -> list[int]:
        """Physical rows used by the mapping, sorted."""
        return sorted(self.row_assignment.values())

    def assignment_vector(self, num_rows: int) -> list[int]:
        """Physical row of every function-matrix row, as a dense list.

        Raises when the mapping is incomplete for the requested size.
        """
        if not self.success:
            raise MappingError("cannot materialise a failed mapping")
        missing = [row for row in range(num_rows) if row not in self.row_assignment]
        if missing:
            raise MappingError(f"mapping is missing rows {missing}")
        return [self.row_assignment[row] for row in range(num_rows)]

    def validate_injective(self) -> bool:
        """True when no two function rows share a physical row."""
        targets = list(self.row_assignment.values())
        return len(targets) == len(set(targets))

    def __bool__(self) -> bool:
        return self.success

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.success else f"FAIL ({self.failure_reason})"
        dual = " [dual]" if self.used_complement else ""
        return (
            f"{self.algorithm}: {status}{dual}, rows={len(self.row_assignment)}, "
            f"time={self.runtime_seconds * 1e3:.2f} ms, "
            f"backtracks={self.statistics.backtracks}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation.

        The row assignment is stored as sorted ``[function_row,
        crossbar_row]`` pairs because JSON object keys must be strings.
        """
        return {
            "success": self.success,
            "algorithm": self.algorithm,
            "row_assignment": sorted(
                [fm_row, cm_row] for fm_row, cm_row in self.row_assignment.items()
            ),
            "failure_reason": self.failure_reason,
            "runtime_seconds": self.runtime_seconds,
            "used_complement": self.used_complement,
            "statistics": self.statistics.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MappingResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        return cls(
            success=payload["success"],
            algorithm=payload["algorithm"],
            row_assignment={
                int(fm_row): int(cm_row)
                for fm_row, cm_row in payload.get("row_assignment", [])
            },
            failure_reason=payload.get("failure_reason", ""),
            runtime_seconds=payload.get("runtime_seconds", 0.0),
            used_complement=payload.get("used_complement", False),
            statistics=MappingStatistics.from_dict(payload.get("statistics", {})),
        )
