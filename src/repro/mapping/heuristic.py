"""Heuristic minterm-row matcher with one-step backtracking (Algorithm 1).

This is the first stage of the paper's hybrid algorithm: the product rows
of the function matrix are matched to crossbar rows greedily, top to
bottom, searching unmatched crossbar rows first.  When a product row
cannot be placed, *backtracking* revisits the already-matched crossbar
rows: if the new row fits on a matched crossbar row and the product
previously assigned there can be relocated to a still-unmatched row, the
two are swapped; otherwise the next matched row is tried.  When no swap
exists the matcher reports failure for that product row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.result import MappingStatistics


@dataclass
class HeuristicMatchOutcome:
    """Result of the heuristic minterm-matching stage.

    ``assignment`` maps minterm-row index → crossbar-row index; when
    ``success`` is False, ``failed_row`` names the first product row that
    could not be placed.
    """

    success: bool
    assignment: dict[int, int] = field(default_factory=dict)
    failed_row: int | None = None
    statistics: MappingStatistics = field(default_factory=MappingStatistics)

    def matched_crossbar_rows(self) -> set[int]:
        """Physical rows consumed by the minterm stage."""
        return set(self.assignment.values())


class HeuristicMatcher:
    """Greedy top-to-bottom matcher with one-step backtracking.

    Compatibility of one product row against *all* crossbar rows is
    evaluated as a single vectorised operation (and cached), so the
    matcher scales to the paper's largest benchmarks (alu4: 583 rows)
    while keeping the exact top-to-bottom placement order of Algorithm 1.
    """

    def __init__(self, crossbar_matrix: CrossbarMatrix):
        self._crossbar = crossbar_matrix
        self._usable_rows = crossbar_matrix.usable_rows()
        self._cm_bool = crossbar_matrix.matrix.astype(bool)
        self._compatibility_cache: dict[int, np.ndarray] = {}

    def match_minterms(self, minterm_rows: np.ndarray) -> HeuristicMatchOutcome:
        """Place every minterm row on a distinct usable crossbar row."""
        statistics = MappingStatistics()
        assignment: dict[int, int] = {}
        owner_of_crossbar_row: dict[int, int] = {}
        self._compatibility_cache.clear()

        for fm_index in range(minterm_rows.shape[0]):
            placed = self._match_unmatched(
                fm_index, minterm_rows, owner_of_crossbar_row, statistics
            )
            if placed is None:
                placed = self._backtrack(
                    fm_index,
                    minterm_rows,
                    owner_of_crossbar_row,
                    assignment,
                    statistics,
                )
            if placed is None:
                return HeuristicMatchOutcome(
                    success=False,
                    assignment=assignment,
                    failed_row=fm_index,
                    statistics=statistics,
                )
            assignment[fm_index] = placed
            owner_of_crossbar_row[placed] = fm_index
        return HeuristicMatchOutcome(
            success=True, assignment=assignment, statistics=statistics
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _compatibility(self, fm_index: int, minterm_rows: np.ndarray) -> np.ndarray:
        """Boolean vector: which crossbar rows can host this product row."""
        cached = self._compatibility_cache.get(fm_index)
        if cached is None:
            fm_row = minterm_rows[fm_index].astype(bool)
            cached = ~np.any(fm_row & ~self._cm_bool, axis=1)
            self._compatibility_cache[fm_index] = cached
        return cached

    def _match_unmatched(
        self,
        fm_index: int,
        minterm_rows: np.ndarray,
        owner_of_crossbar_row: dict[int, int],
        statistics: MappingStatistics,
    ) -> int | None:
        """First unmatched usable crossbar row compatible with the product."""
        compatible = self._compatibility(fm_index, minterm_rows)
        for crossbar_row in self._usable_rows:
            if crossbar_row in owner_of_crossbar_row:
                continue
            statistics.compatibility_checks += 1
            if compatible[crossbar_row]:
                return crossbar_row
        return None

    def _backtrack(
        self,
        fm_index: int,
        minterm_rows: np.ndarray,
        owner_of_crossbar_row: dict[int, int],
        assignment: dict[int, int],
        statistics: MappingStatistics,
    ) -> int | None:
        """One-step backtracking over already-matched crossbar rows.

        Tries every matched crossbar row top to bottom; on the first one
        the new product fits, its previous occupant is relocated to an
        unmatched row if possible.  Returns the crossbar row claimed for
        ``fm_index``, updating the relocated occupant's assignment in
        place, or ``None`` when no swap works.
        """
        compatible = self._compatibility(fm_index, minterm_rows)
        for crossbar_row in self._usable_rows:
            occupant = owner_of_crossbar_row.get(crossbar_row)
            if occupant is None:
                continue
            statistics.compatibility_checks += 1
            if not compatible[crossbar_row]:
                continue
            statistics.backtracks += 1
            relocation = self._match_unmatched(
                occupant, minterm_rows, owner_of_crossbar_row, statistics
            )
            if relocation is None:
                continue
            # Relocate the occupant, free its old row for the new product.
            del owner_of_crossbar_row[crossbar_row]
            owner_of_crossbar_row[relocation] = occupant
            assignment[occupant] = relocation
            return crossbar_row
        return None


class GreedyMatcher(HeuristicMatcher):
    """The heuristic matcher with backtracking disabled (ablation baseline)."""

    def _backtrack(self, *args, **kwargs) -> int | None:  # noqa: D102
        return None
