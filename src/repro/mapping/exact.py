"""The exact mapping algorithm (EA) the paper compares HBA against.

EA builds the matching matrix for *every* row of the function matrix —
products and outputs alike — against every usable crossbar row and solves
the resulting assignment problem with Munkres' algorithm.  A valid
mapping exists iff the optimum assignment has zero cost.  EA finds a
mapping whenever one exists (it is exact), but the full matching matrix
and the larger assignment make it one to two orders of magnitude slower
than HBA on the bigger benchmarks, which is precisely the trade-off
Table II quantifies.
"""

from __future__ import annotations

import time

from repro.boolean.function import BooleanFunction
from repro.defects.defect_map import DefectMap
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.hybrid import _coerce_crossbar_matrix, _coerce_function_matrix
from repro.mapping.matching import matching_matrix, quick_infeasibility_check
from repro.mapping.munkres import zero_cost_assignment
from repro.mapping.result import MappingResult, MappingStatistics


class ExactMapper:
    """EA: full matching matrix + Munkres assignment over all rows."""

    algorithm_name = "exact"

    def __init__(self, *, assignment_backend: str = "auto"):
        self._assignment_backend = assignment_backend

    def map(
        self,
        function_matrix: FunctionMatrix | BooleanFunction,
        crossbar: CrossbarMatrix | DefectMap,
    ) -> MappingResult:
        """Find a defect-avoiding row assignment, or prove none exists."""
        start = time.perf_counter()
        fm = _coerce_function_matrix(function_matrix)
        cm = _coerce_crossbar_matrix(crossbar)
        statistics = MappingStatistics()

        reason = quick_infeasibility_check(fm, cm)
        if reason is not None:
            return MappingResult(
                success=False,
                algorithm=self.algorithm_name,
                failure_reason=reason,
                runtime_seconds=time.perf_counter() - start,
                statistics=statistics,
            )

        usable_rows = cm.usable_rows()
        costs = matching_matrix(fm, cm, cm_row_indices=usable_rows)
        statistics.matching_matrix_entries = int(costs.size)
        statistics.assignment_size = tuple(costs.shape)
        statistics.compatibility_checks = int(costs.size)

        assignment = zero_cost_assignment(costs, backend=self._assignment_backend)
        if assignment is None:
            return MappingResult(
                success=False,
                algorithm=self.algorithm_name,
                failure_reason="no zero-cost assignment exists for the full matrix",
                runtime_seconds=time.perf_counter() - start,
                statistics=statistics,
            )

        row_assignment = {
            fm_row: usable_rows[cm_local_row]
            for fm_row, cm_local_row in assignment.items()
        }
        return MappingResult(
            success=True,
            algorithm=self.algorithm_name,
            row_assignment=row_assignment,
            runtime_seconds=time.perf_counter() - start,
            statistics=statistics,
        )
