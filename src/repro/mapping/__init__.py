"""Defect-tolerant logic mapping (the paper's §IV-B and Algorithm 1).

Public entry points:

* :class:`HybridMapper` — the paper's proposed HBA;
* :class:`ExactMapper` — the EA baseline it is compared against;
* :class:`GreedyMapper` — HBA without backtracking (ablation);
* :func:`map_with_dual_selection` — full Algorithm 1 including the
  function-vs-complement area selection;
* validation helpers that check mappings both at the matrix level and by
  simulating the mapped design on the defective array.
"""

from repro.mapping.batch_kernel import (
    BatchMapResult,
    MapperBatchOutcome,
    map_sample_batch,
    mapper_kind,
)
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.exact import ExactMapper
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.heuristic import (
    GreedyMatcher,
    HeuristicMatchOutcome,
    HeuristicMatcher,
)
from repro.mapping.hybrid import GreedyMapper, HybridMapper, map_with_dual_selection
from repro.mapping.matching import (
    MATCH,
    NO_MATCH,
    compatibility_matrix,
    compatibility_tensor,
    feasible_rows_for,
    matching_matrix,
    quick_infeasibility_check,
    rows_compatible,
)
from repro.mapping.munkres import (
    AssignmentResult,
    solve_assignment,
    zero_cost_assignment,
)
from repro.mapping.result import MappingResult, MappingStatistics
from repro.mapping.validate import (
    validate_assignment,
    validate_both,
    validate_functionally,
)

__all__ = [
    "FunctionMatrix",
    "CrossbarMatrix",
    "rows_compatible",
    "compatibility_matrix",
    "compatibility_tensor",
    "matching_matrix",
    "map_sample_batch",
    "mapper_kind",
    "BatchMapResult",
    "MapperBatchOutcome",
    "feasible_rows_for",
    "quick_infeasibility_check",
    "MATCH",
    "NO_MATCH",
    "AssignmentResult",
    "solve_assignment",
    "zero_cost_assignment",
    "HeuristicMatcher",
    "GreedyMatcher",
    "HeuristicMatchOutcome",
    "HybridMapper",
    "GreedyMapper",
    "ExactMapper",
    "map_with_dual_selection",
    "MappingResult",
    "MappingStatistics",
    "validate_assignment",
    "validate_functionally",
    "validate_both",
]
