"""Shared execution-engine names, aliasing and ``auto`` resolution.

Engine spellings used to be normalized ad hoc at each entry point (the
``"packed"`` alias was rewritten in one CLI subcommand, the runner and
the service orchestrator separately — and rejected elsewhere).  This
module is the single place every layer goes through:

* :func:`canonical_engine` folds aliases and rejects unknown names
  with a registry-style error listing the valid choices;
* :func:`resolve_mapping_engine` additionally resolves ``"auto"`` (and
  an explicitly requested but unavailable ``"compiled"``) to the
  fastest tier this machine can actually run, mirroring the Boolean
  side's :func:`repro.boolean.minimize.resolve_boolean_engine`.

The fallback order is ``compiled`` → ``vectorized`` → ``reference``:
``auto`` picks the compiled tier whenever a backend loaded
(:mod:`repro.compiled`), the NumPy tier otherwise; ``reference`` is
only ever selected explicitly.  Because all tiers are differentially
tested to identical counting statistics, resolution may differ from
machine to machine without affecting any result — which is also why
engines are never part of artifact cache keys.
"""

from __future__ import annotations

from repro.exceptions import ExperimentError

#: Canonical engine names accepted by the mapping pipeline
#: (``"auto"`` resolves per machine at run time).
MAPPING_ENGINES = ("auto", "compiled", "vectorized", "reference")

#: Accepted alternate spellings.  ``"packed"`` selects the batched
#: kernels of whichever protocol runs, i.e. the ``vectorized`` tier.
ENGINE_ALIASES = {"packed": "vectorized"}

#: Every accepted spelling — canonical names plus aliases — for CLI
#: ``choices=`` lists and error messages.
ENGINE_CHOICES = ("auto", "compiled", "vectorized", "packed", "reference")


def canonical_engine(engine: str) -> str:
    """Fold aliases and validate; returns a :data:`MAPPING_ENGINES` name.

    Raises :class:`~repro.exceptions.ExperimentError` naming the valid
    choices for anything unknown, like the mapper / defect-model
    registries do.
    """
    name = ENGINE_ALIASES.get(engine, engine)
    if name not in MAPPING_ENGINES:
        raise ExperimentError(
            f"unknown engine {engine!r}; expected one of "
            f"{list(ENGINE_CHOICES)}"
        )
    return name


def resolve_mapping_engine(engine: str) -> str:
    """Resolve ``engine=`` into a concrete, runnable mapping engine.

    ``"auto"`` picks the compiled tier when a backend is available and
    the NumPy tier otherwise; an explicit ``"compiled"`` likewise
    degrades silently to ``"vectorized"`` on machines without any
    backend (matching how the Boolean ``"packed"`` engine degrades to
    ``"object"`` outside its supported width), so campaigns never fail
    over an optional dependency.
    """
    name = canonical_engine(engine)
    if name in ("auto", "compiled"):
        from repro import compiled

        return "compiled" if compiled.compiled_available() else "vectorized"
    return name
