"""Defect-rate sweep: success rate as a function of the defect rate.

The paper fixes the defect rate at 10 %; this extension sweeps it and
records how quickly each algorithm's success rate degrades on
optimum-size crossbars, including the naive (defect-unaware) mapping as a
baseline.  It quantifies the gain of defect-tolerant mapping and exposes
the crossover where even the exact algorithm stops finding mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.defect_models import create_defect_model
from repro.api.runner import run_suite
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.boolean.function import BooleanFunction
from repro.circuits.registry import get_benchmark
from repro.defects.analysis import naive_survival_probability
from repro.experiments.report import format_table

#: Default defect rates swept by the extension experiment.
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30)


@dataclass
class SweepPoint:
    """Results at one defect rate."""

    defect_rate: float
    success_rates: dict[str, float] = field(default_factory=dict)
    mean_runtimes: dict[str, float] = field(default_factory=dict)
    naive_survival: float = 0.0


@dataclass
class DefectSweepResult:
    """Full sweep for one circuit."""

    function_name: str
    sample_size: int
    points: list[SweepPoint] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Algorithm labels present in the sweep."""
        return sorted(self.points[0].success_rates) if self.points else []

    def render(self) -> str:
        """Monospaced rendering of the sweep."""
        algorithms = self.algorithms()
        headers = ["rate", "naive"] + algorithms
        body = []
        for point in self.points:
            body.append(
                [f"{point.defect_rate:.0%}", f"{point.naive_survival:.2f}"]
                + [f"{point.success_rates[a]:.2f}" for a in algorithms]
            )
        return format_table(
            headers,
            body,
            title=f"Defect-rate sweep for {self.function_name} "
            f"({self.sample_size} samples/point)",
        )


def paper_suite(
    function: BooleanFunction | str = "misex1",
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    sample_size: int = 100,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    seed: int = 0,
) -> ScenarioSuite:
    """The defect-rate sweep as a declarative scenario suite.

    One scenario per swept rate (uniform stuck-open defects on the
    optimum-size crossbar); ``misex1`` is the canonical demo circuit.
    """
    source = FunctionSource.coerce(function)
    label = source.label()
    return ScenarioSuite(
        "sweep",
        tuple(
            Scenario(
                name=f"{label}@{rate:g}",
                source=source,
                mappers=tuple(algorithms),
                defect_model=create_defect_model("uniform", rate=rate),
                samples=sample_size,
                seed=seed,
            )
            for rate in rates
        ),
    )


def run_defect_sweep(
    function: BooleanFunction | str,
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    sample_size: int = 100,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    seed: int = 0,
    workers: int | None = None,
) -> DefectSweepResult:
    """Sweep the defect rate for one circuit (name or function).

    Thin wrapper over :func:`paper_suite` + the unified scenario runner;
    ``workers`` is forwarded to the Monte-Carlo batch engine (``None`` =
    auto).
    """
    suite = paper_suite(
        function,
        rates=rates,
        sample_size=sample_size,
        algorithms=algorithms,
        seed=seed,
    )
    if isinstance(function, str):
        function = get_benchmark(function)
    result = DefectSweepResult(
        function_name=function.name or "<anonymous>", sample_size=sample_size
    )
    for rate, scenario_result in zip(rates, run_suite(suite, workers=workers)):
        monte_carlo = scenario_result.monte_carlo()
        point = SweepPoint(
            defect_rate=rate,
            success_rates={
                name: outcome.success_rate
                for name, outcome in monte_carlo.outcomes.items()
            },
            mean_runtimes={
                name: outcome.mean_runtime
                for name, outcome in monte_carlo.outcomes.items()
            },
            naive_survival=naive_survival_probability(function, rate),
        )
        result.points.append(point)
    return result
