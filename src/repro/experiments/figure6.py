"""Figure 6: two-level vs multi-level area on random functions.

For every input size the paper draws 200 random single-output Boolean
functions, maps each both as a two-level and as a multi-level crossbar,
sorts the samples by product count and reports (a) both cost curves and
(b) the *success rate* — the fraction of samples whose multi-level design
is cheaper than the two-level one.  Two trends are highlighted: the
success rate falls as the input size grows, and within one panel samples
with more products favour the multi-level design.

Our NAND technology mapper is weaker than ABC with full resynthesis, so
the absolute success rates are lower than the paper's 65 %…33 % band,
but both trends are preserved (EXPERIMENTS.md records the measured
values next to the paper's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.runner import run_suite
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.boolean.function import BooleanFunction
from repro.boolean.minimize import minimize_cover
from repro.boolean.random_functions import RandomFunctionSpec
from repro.crossbar.two_level import two_level_area_cost
from repro.exceptions import ExperimentError
from repro.experiments.report import ascii_scatter, format_percent
from repro.synth.area import multilevel_area
from repro.synth.tech_map import MappingOptions, technology_map

#: Input sizes shown in the paper's figure panels.
PAPER_INPUT_SIZES = (8, 9, 10, 15)
#: Success rates the paper reports for those panels.
PAPER_SUCCESS_RATES = {8: 0.65, 9: 0.60, 10: 0.54, 15: 0.33}


@dataclass(frozen=True)
class Figure6Config:
    """Workload parameters of the Fig. 6 Monte-Carlo study."""

    input_sizes: tuple[int, ...] = PAPER_INPUT_SIZES
    sample_size: int = 200
    seed: int = 0
    min_products: int = 2
    max_products_factor: float = 1.0
    max_literals_fraction: float = 0.5
    minimize_before_synthesis: bool = True

    def spec_for(self, num_inputs: int) -> RandomFunctionSpec:
        """The random-function spec used for one input size."""
        max_products = max(
            self.min_products, int(round(num_inputs * self.max_products_factor))
        )
        max_literals = max(2, int(round(num_inputs * self.max_literals_fraction)))
        return RandomFunctionSpec(
            num_inputs=num_inputs,
            min_products=self.min_products,
            max_products=max_products,
            max_literals=max_literals,
        )


@dataclass
class Figure6Sample:
    """Both costs for one random function."""

    num_products: int
    two_level_cost: int
    multi_level_cost: int
    gate_count: int

    @property
    def multi_level_wins(self) -> bool:
        """True when the multi-level design is strictly cheaper."""
        return self.multi_level_cost < self.two_level_cost


@dataclass
class Figure6Panel:
    """One panel of the figure (one input size)."""

    num_inputs: int
    samples: list[Figure6Sample] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of samples where multi-level is cheaper (paper metric)."""
        if not self.samples:
            return 0.0
        return sum(s.multi_level_wins for s in self.samples) / len(self.samples)

    def sorted_by_products(self) -> list[Figure6Sample]:
        """Samples sorted by product count (the paper's x-axis order)."""
        return sorted(self.samples, key=lambda s: s.num_products)

    def success_rate_by_product_split(self) -> tuple[float, float]:
        """Success rate for the lower and upper halves of the product range.

        Used to check the paper's second trend (more products → easier
        multi-level win) quantitatively.
        """
        ordered = self.sorted_by_products()
        if len(ordered) < 2:
            rate = self.success_rate
            return rate, rate
        half = len(ordered) // 2
        lower = ordered[:half]
        upper = ordered[half:]
        lower_rate = sum(s.multi_level_wins for s in lower) / len(lower)
        upper_rate = sum(s.multi_level_wins for s in upper) / len(upper)
        return lower_rate, upper_rate

    def render(self) -> str:
        """ASCII rendering of the panel, mimicking one Fig. 6 sub-plot."""
        ordered = self.sorted_by_products()
        return ascii_scatter(
            {
                "two-level": [s.two_level_cost for s in ordered],
                "multi-level": [s.multi_level_cost for s in ordered],
            },
            title=(
                f"Input Size = {self.num_inputs} "
                f"(Success Rate = {format_percent(self.success_rate)})"
            ),
        )


@dataclass
class Figure6Result:
    """All panels of the regenerated figure."""

    config: Figure6Config
    panels: dict[int, Figure6Panel] = field(default_factory=dict)

    def success_rates(self) -> dict[int, float]:
        """Success rate per input size."""
        return {n: panel.success_rate for n, panel in self.panels.items()}

    def render(self) -> str:
        """Full text rendering of the figure."""
        blocks = [panel.render() for _, panel in sorted(self.panels.items())]
        return "\n\n".join(blocks)


def evaluate_sample(
    function: BooleanFunction,
    *,
    minimize_before_synthesis: bool = True,
    engine: str = "auto",
) -> Figure6Sample:
    """Compute both area costs for one random single-output function.

    ``engine`` selects the Boolean minimisation kernel — ``"auto"`` /
    ``"packed"`` for the bit-plane fast path, ``"object"`` for the
    reference walk; both produce identical samples.
    """
    if function.num_outputs != 1:
        raise ExperimentError("Fig. 6 uses single-output functions")
    num_products = function.num_products
    two_level = two_level_area_cost(function.num_inputs, 1, num_products)

    candidate = function
    if minimize_before_synthesis:
        cover = minimize_cover(function.cover_for_output(0), engine=engine)
        candidate = BooleanFunction.single_output(
            cover, input_names=function.input_names, name=function.name
        )
    network = technology_map(candidate, options=MappingOptions(strategy="best"))
    multi_level = multilevel_area(network)
    return Figure6Sample(
        num_products=num_products,
        two_level_cost=two_level,
        multi_level_cost=multi_level,
        gate_count=network.gate_count(),
    )


def scenario_for(config: Figure6Config, num_inputs: int) -> Scenario:
    """One figure panel as a declarative ``"area"`` scenario."""
    spec = config.spec_for(num_inputs)
    return Scenario(
        name=f"figure6-n{num_inputs}",
        source=FunctionSource.random(
            num_inputs,
            min_products=spec.min_products,
            max_products=spec.max_products,
            min_literals=spec.min_literals,
            max_literals=spec.max_literals,
        ),
        samples=config.sample_size,
        seed=config.seed + num_inputs,
        protocol="area",
        options={"minimize_before_synthesis": config.minimize_before_synthesis},
    )


def paper_suite(config: Figure6Config | None = None) -> ScenarioSuite:
    """The paper's Fig. 6 workload as a declarative scenario suite."""
    config = config or Figure6Config()
    return ScenarioSuite(
        "figure6",
        tuple(scenario_for(config, n) for n in config.input_sizes),
    )


def run_figure6(
    config: Figure6Config | None = None,
    *,
    workers: int | None = None,
    engine: str = "auto",
) -> Figure6Result:
    """Regenerate Fig. 6 for the configured input sizes.

    Thin wrapper over :func:`paper_suite` + the unified scenario runner.
    ``workers`` selects the parallel batch engine (``None`` = auto);
    each panel's sample stream is chunked over *global* sample indices
    with collision-free derived seeds and merged in chunk order, so the
    panels are identical for every worker count.  ``engine`` selects the
    Boolean execution kernel — ``"vectorized"``/``"packed"`` for the
    bit-plane fast path, ``"reference"`` for the object walk — with
    sample-for-sample identical panels.
    """
    config = config or Figure6Config()
    result = Figure6Result(config=config)
    suite_result = run_suite(paper_suite(config), workers=workers, engine=engine)
    for num_inputs, scenario_result in zip(config.input_sizes, suite_result):
        panel = Figure6Panel(num_inputs=num_inputs)
        panel.samples = [
            Figure6Sample(
                num_products=row["num_products"],
                two_level_cost=row["two_level_cost"],
                multi_level_cost=row["multi_level_cost"],
                gate_count=row["gate_count"],
            )
            for row in scenario_result.area_samples()
        ]
        result.panels[num_inputs] = panel
    return result
