"""Redundancy / yield analysis (the paper's stated future work, §VI).

The paper maps only optimum-size crossbars and therefore cannot tolerate
stuck-at-closed defects at all; it names "area cost with redundant lines
vs. defect tolerance performance (yield analysis)" as future work.  This
extension implements that study:

* redundant *rows* are appended to the optimum-size crossbar and the
  mapping algorithms may place the function-matrix rows on any usable
  subset;
* redundant *columns* are appended as spares; a column poisoned by a
  stuck-closed defect only breaks the mapping when fewer functional
  columns remain than the design needs (the controller is assumed to be
  able to steer around trailing spare columns, column order within the
  used block is preserved);
* yield is the fraction of Monte-Carlo samples with a valid mapping, and
  the area overhead is reported next to it so the yield/area trade-off
  curve can be drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.defect_models import create_defect_model
from repro.api.runner import run_scenario
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.boolean.function import BooleanFunction
from repro.circuits.registry import get_benchmark
from repro.exceptions import ExperimentError
from repro.experiments.report import format_table
from repro.mapping.function_matrix import FunctionMatrix


@dataclass
class RedundancyPoint:
    """Yield at one redundancy level."""

    extra_rows: int
    extra_columns: int
    area_overhead: float
    yields: dict[str, float] = field(default_factory=dict)


@dataclass
class RedundancyResult:
    """Yield/area trade-off curve for one circuit."""

    function_name: str
    defect_rate: float
    stuck_open_fraction: float
    sample_size: int
    points: list[RedundancyPoint] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Algorithm labels present in the study."""
        return sorted(self.points[0].yields) if self.points else []

    def best_point_for_yield(
        self, algorithm: str, target_yield: float
    ) -> RedundancyPoint | None:
        """Smallest-overhead point reaching a target yield, if any."""
        feasible = [
            point
            for point in self.points
            if point.yields.get(algorithm, 0.0) >= target_yield
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda point: point.area_overhead)

    def render(self) -> str:
        """Monospaced rendering of the yield/overhead table."""
        algorithms = self.algorithms()
        headers = ["+rows", "+cols", "overhead"] + [f"yield[{a}]" for a in algorithms]
        body = []
        for point in self.points:
            body.append(
                [
                    point.extra_rows,
                    point.extra_columns,
                    f"{point.area_overhead:.0%}",
                ]
                + [f"{point.yields[a]:.2f}" for a in algorithms]
            )
        title = (
            f"Redundancy / yield analysis for {self.function_name} "
            f"(defect rate {self.defect_rate:.0%}, "
            f"stuck-open fraction {self.stuck_open_fraction:.0%}, "
            f"{self.sample_size} samples/point)"
        )
        return format_table(headers, body, title=title)


#: The default yield/area trade-off curve points.
DEFAULT_REDUNDANCY_LEVELS: tuple[tuple[int, int], ...] = (
    (0, 0),
    (1, 0),
    (2, 0),
    (4, 0),
    (2, 2),
    (4, 4),
    (8, 8),
)


def paper_suite(
    function: BooleanFunction | str = "rd53",
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 0.9,
    redundancy_levels: tuple[tuple[int, int], ...] = DEFAULT_REDUNDANCY_LEVELS,
    sample_size: int = 100,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    seed: int = 0,
) -> ScenarioSuite:
    """The redundancy/yield study as a declarative scenario suite.

    One scenario whose ``redundancy`` tuple spans the whole trade-off
    curve (one result row per level); ``rd53`` is the canonical demo
    circuit.
    """
    if not 0.0 <= stuck_open_fraction <= 1.0:
        raise ExperimentError("stuck_open_fraction must lie in [0, 1]")
    source = FunctionSource.coerce(function)
    label = source.label()
    return ScenarioSuite(
        "redundancy",
        (
            Scenario(
                name=f"{label}-redundancy",
                source=source,
                mappers=tuple(algorithms),
                defect_model=create_defect_model(
                    "uniform",
                    rate=defect_rate,
                    stuck_open_fraction=stuck_open_fraction,
                ),
                redundancy=tuple(redundancy_levels),
                samples=sample_size,
                seed=seed,
            ),
        ),
    )


def run_redundancy_analysis(
    function: BooleanFunction | str,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 0.9,
    redundancy_levels: tuple[tuple[int, int], ...] = DEFAULT_REDUNDANCY_LEVELS,
    sample_size: int = 100,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    seed: int = 0,
    workers: int | None = None,
) -> RedundancyResult:
    """Measure yield as a function of added redundant rows/columns.

    Thin wrapper over :func:`paper_suite` + the unified scenario runner;
    ``workers`` is forwarded to the Monte-Carlo batch engine (``None`` =
    auto); each redundancy level's sample stream is parallelised
    independently.
    """
    suite = paper_suite(
        function,
        defect_rate=defect_rate,
        stuck_open_fraction=stuck_open_fraction,
        redundancy_levels=redundancy_levels,
        sample_size=sample_size,
        algorithms=algorithms,
        seed=seed,
    )
    if isinstance(function, str):
        function = get_benchmark(function)

    function_matrix = FunctionMatrix(function)
    base_area = function_matrix.num_rows * function_matrix.num_columns

    result = RedundancyResult(
        function_name=function.name or "<anonymous>",
        defect_rate=defect_rate,
        stuck_open_fraction=stuck_open_fraction,
        sample_size=sample_size,
    )
    scenario_result = run_scenario(suite.scenarios[0], workers=workers)
    for extra_rows, extra_columns in redundancy_levels:
        monte_carlo = scenario_result.monte_carlo((extra_rows, extra_columns))
        redundant_area = (function_matrix.num_rows + extra_rows) * (
            function_matrix.num_columns + extra_columns
        )
        result.points.append(
            RedundancyPoint(
                extra_rows=extra_rows,
                extra_columns=extra_columns,
                area_overhead=redundant_area / base_area - 1.0,
                yields={
                    name: outcome.success_rate
                    for name, outcome in monte_carlo.outcomes.items()
                },
            )
        )
    return result
