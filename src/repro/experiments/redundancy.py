"""Redundancy / yield analysis (the paper's stated future work, §VI).

The paper maps only optimum-size crossbars and therefore cannot tolerate
stuck-at-closed defects at all; it names "area cost with redundant lines
vs. defect tolerance performance (yield analysis)" as future work.  This
extension implements that study:

* redundant *rows* are appended to the optimum-size crossbar and the
  mapping algorithms may place the function-matrix rows on any usable
  subset;
* redundant *columns* are appended as spares; a column poisoned by a
  stuck-closed defect only breaks the mapping when fewer functional
  columns remain than the design needs (the controller is assumed to be
  able to steer around trailing spare columns, column order within the
  used block is preserved);
* yield is the fraction of Monte-Carlo samples with a valid mapping, and
  the area overhead is reported next to it so the yield/area trade-off
  curve can be drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.boolean.function import BooleanFunction
from repro.circuits.registry import get_benchmark
from repro.defects.types import DefectProfile
from repro.exceptions import ExperimentError
from repro.experiments.monte_carlo import run_mapping_monte_carlo
from repro.experiments.report import format_table
from repro.mapping.function_matrix import FunctionMatrix


@dataclass
class RedundancyPoint:
    """Yield at one redundancy level."""

    extra_rows: int
    extra_columns: int
    area_overhead: float
    yields: dict[str, float] = field(default_factory=dict)


@dataclass
class RedundancyResult:
    """Yield/area trade-off curve for one circuit."""

    function_name: str
    defect_rate: float
    stuck_open_fraction: float
    sample_size: int
    points: list[RedundancyPoint] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Algorithm labels present in the study."""
        return sorted(self.points[0].yields) if self.points else []

    def best_point_for_yield(
        self, algorithm: str, target_yield: float
    ) -> RedundancyPoint | None:
        """Smallest-overhead point reaching a target yield, if any."""
        feasible = [
            point
            for point in self.points
            if point.yields.get(algorithm, 0.0) >= target_yield
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda point: point.area_overhead)

    def render(self) -> str:
        """Monospaced rendering of the yield/overhead table."""
        algorithms = self.algorithms()
        headers = ["+rows", "+cols", "overhead"] + [f"yield[{a}]" for a in algorithms]
        body = []
        for point in self.points:
            body.append(
                [
                    point.extra_rows,
                    point.extra_columns,
                    f"{point.area_overhead:.0%}",
                ]
                + [f"{point.yields[a]:.2f}" for a in algorithms]
            )
        title = (
            f"Redundancy / yield analysis for {self.function_name} "
            f"(defect rate {self.defect_rate:.0%}, "
            f"stuck-open fraction {self.stuck_open_fraction:.0%}, "
            f"{self.sample_size} samples/point)"
        )
        return format_table(headers, body, title=title)


def run_redundancy_analysis(
    function: BooleanFunction | str,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 0.9,
    redundancy_levels: tuple[tuple[int, int], ...] = (
        (0, 0),
        (1, 0),
        (2, 0),
        (4, 0),
        (2, 2),
        (4, 4),
        (8, 8),
    ),
    sample_size: int = 100,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    seed: int = 0,
    workers: int | None = None,
) -> RedundancyResult:
    """Measure yield as a function of added redundant rows/columns.

    ``workers`` is forwarded to the Monte-Carlo batch engine (``None`` =
    auto); each redundancy level's sample stream is parallelised
    independently.
    """
    if isinstance(function, str):
        function = get_benchmark(function)
    if not 0.0 <= stuck_open_fraction <= 1.0:
        raise ExperimentError("stuck_open_fraction must lie in [0, 1]")
    DefectProfile(rate=defect_rate, stuck_open_fraction=stuck_open_fraction)

    function_matrix = FunctionMatrix(function)
    base_area = function_matrix.num_rows * function_matrix.num_columns

    result = RedundancyResult(
        function_name=function.name or "<anonymous>",
        defect_rate=defect_rate,
        stuck_open_fraction=stuck_open_fraction,
        sample_size=sample_size,
    )
    for extra_rows, extra_columns in redundancy_levels:
        monte_carlo = run_mapping_monte_carlo(
            function,
            defect_rate=defect_rate,
            stuck_open_fraction=stuck_open_fraction,
            sample_size=sample_size,
            algorithms=algorithms,
            seed=seed,
            extra_rows=extra_rows,
            extra_columns=extra_columns,
            workers=workers,
        )
        redundant_area = (function_matrix.num_rows + extra_rows) * (
            function_matrix.num_columns + extra_columns
        )
        result.points.append(
            RedundancyPoint(
                extra_rows=extra_rows,
                extra_columns=extra_columns,
                area_overhead=redundant_area / base_area - 1.0,
                yields={
                    name: outcome.success_rate
                    for name, outcome in monte_carlo.outcomes.items()
                },
            )
        )
    return result
