"""Plain-text rendering of experiment results (tables and ASCII figures).

The paper's evaluation consists of one figure (Fig. 6) and two tables;
this module renders our regenerated counterparts as monospaced text so
the benchmark harness can print them directly and EXPERIMENTS.md can
embed them verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    style: str = "monospace",
) -> str:
    """Render a list of rows as a table.

    ``style="monospace"`` (the default) produces the aligned plain-text
    rendering the harnesses print; ``style="markdown"`` produces a GFM
    pipe table (title as a bold paragraph) so CLI ``--out`` artifacts
    embed cleanly in docs.
    """
    if style not in ("monospace", "markdown"):
        raise ValueError(
            f"unknown table style {style!r}; expected 'monospace' or 'markdown'"
        )
    columns = len(headers)
    normalised = [[_cell(value) for value in row] for row in rows]
    for row in normalised:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
    lines = []
    if style == "markdown":
        if title:
            lines.append(f"**{title}**")
            lines.append("")
        escaped = [
            [cell.replace("|", "\\|") for cell in row]
            for row in ([list(headers)] + normalised)
        ]
        lines.append("| " + " | ".join(escaped[0]) + " |")
        lines.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in escaped[1:]:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in normalised), 1)
        if normalised
        else len(headers[i])
        for i in range(columns)
    ]
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in normalised:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_percent(value: float) -> str:
    """Render a fraction as a percentage string (``0.65`` → ``"65%"``)."""
    return f"{round(value * 100):d}%"


def format_runtime(seconds: float) -> str:
    """Render a runtime in seconds with millisecond resolution."""
    return f"{seconds:.3f}"


def ascii_scatter(
    series: dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Very small ASCII line/scatter plot used to mimic Fig. 6 panels.

    Each named series is a sequence of y-values plotted against its index
    (the samples are pre-sorted by product count, like the paper's x-axis).
    """
    if not series:
        return title
    max_length = max(len(values) for values in series.values())
    max_value = max(
        (max(values) for values in series.values() if len(values)), default=1.0
    )
    min_value = min(
        (min(values) for values in series.values() if len(values)), default=0.0
    )
    span = max(max_value - min_value, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#"
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for index, value in enumerate(values):
            x = int(index / max(1, max_length - 1) * (width - 1))
            y = int((value - min_value) / span * (height - 1))
            grid[height - 1 - y][x] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={max_value:.0f}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"min={min_value:.0f}   {legend}")
    return "\n".join(lines)
