"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`repro.experiments.figure6` — Fig. 6 (two-level vs multi-level on
  random functions);
* :mod:`repro.experiments.table1` — Table I (benchmark area comparison);
* :mod:`repro.experiments.table2` — Table II (HBA vs EA defect-tolerant
  mapping);
* :mod:`repro.experiments.defect_sweep` and
  :mod:`repro.experiments.redundancy` — the future-work extensions
  (defect-rate sweep, redundancy/yield analysis);
* :mod:`repro.experiments.tradeoff` — the two-level vs multi-level
  area/yield trade-off study (per-stage defect-tolerant mapping);
* :mod:`repro.experiments.monte_carlo` — the shared Monte-Carlo engine.
"""

from repro.experiments.defect_sweep import (
    DEFAULT_RATES,
    DefectSweepResult,
    SweepPoint,
    run_defect_sweep,
)
from repro.experiments.figure6 import (
    Figure6Config,
    Figure6Panel,
    Figure6Result,
    Figure6Sample,
    PAPER_INPUT_SIZES,
    PAPER_SUCCESS_RATES,
    evaluate_sample,
    run_figure6,
)
from repro.experiments.monte_carlo import (
    AlgorithmOutcome,
    MonteCarloResult,
    repair_spare_columns,
    run_mapping_monte_carlo,
)
from repro.experiments.redundancy import (
    RedundancyPoint,
    RedundancyResult,
    run_redundancy_analysis,
)
from repro.experiments.report import (
    ascii_scatter,
    format_percent,
    format_runtime,
    format_table,
)
from repro.experiments.table1 import (
    Table1Result,
    Table1Row,
    multi_level_cost_of,
    run_table1,
)
from repro.experiments.tradeoff import (
    TRADEOFF_CIRCUITS,
    TradeoffPoint,
    TradeoffResult,
    run_tradeoff,
)
from repro.experiments.table2 import (
    PAPER_TABLE2_RESULTS,
    Table2Result,
    Table2Row,
    run_table2,
    run_table2_row,
)

__all__ = [
    "run_figure6",
    "Figure6Config",
    "Figure6Result",
    "Figure6Panel",
    "Figure6Sample",
    "evaluate_sample",
    "PAPER_INPUT_SIZES",
    "PAPER_SUCCESS_RATES",
    "run_table1",
    "Table1Result",
    "Table1Row",
    "multi_level_cost_of",
    "run_table2",
    "run_table2_row",
    "Table2Result",
    "Table2Row",
    "PAPER_TABLE2_RESULTS",
    "run_mapping_monte_carlo",
    "MonteCarloResult",
    "AlgorithmOutcome",
    "repair_spare_columns",
    "run_defect_sweep",
    "DefectSweepResult",
    "SweepPoint",
    "DEFAULT_RATES",
    "run_redundancy_analysis",
    "RedundancyResult",
    "RedundancyPoint",
    "run_tradeoff",
    "TradeoffResult",
    "TradeoffPoint",
    "TRADEOFF_CIRCUITS",
    "format_table",
    "format_percent",
    "format_runtime",
    "ascii_scatter",
]
