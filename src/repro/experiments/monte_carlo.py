"""Generic Monte-Carlo harness for defect-tolerant mapping experiments.

All of the paper's §V results follow the same protocol: generate many
defective crossbars for an optimum-size design at a given defect rate,
run one or more mapping algorithms on each, and report per-algorithm
success rates and runtimes.  :func:`run_mapping_monte_carlo` implements
that protocol once so Table II, the defect-rate sweep and the redundancy
study are thin wrappers around it.

Execution engine
----------------
The sample stream is split into chunks and executed by
:class:`repro.api.batch.BatchRunner` — serially (``workers=1``), on a
``ProcessPoolExecutor`` (``workers=N``) or auto-sized (``workers=None``,
the default: CPU count, staying serial for small batches and single-core
machines).  Every sample's defect map is seeded by
:func:`repro.api.seeding.derive_seed` from its *global* index, and the
per-chunk :class:`AlgorithmOutcome` partials are merged in chunk order,
so the counting statistics (samples, successes, backtracks, invalid
mappings — and therefore every success rate) are identical for any
worker count.  Only the wall-clock runtime fields vary run to run, as
they always have.

Each chunk runs on one of two engines (``engine=``):

* ``"vectorized"`` (default) — the batched NumPy kernel of
  :mod:`repro.mapping.batch_kernel`: one defect tensor per chunk, one
  broadcasted compatibility pass, counting-bound pre-screen, NumPy
  replicas for the undecided samples; third-party mappers transparently
  fall back to the object path.
* ``"reference"`` — the original object-per-sample loop, kept as the
  ground truth the vectorized engine is differentially tested against.

Both engines consume identical per-sample seed streams and produce
identical counting statistics; only wall-clock fields differ.

Algorithms are resolved by name through :mod:`repro.api.registry`;
register new mappers with :func:`repro.api.register_mapper` and they are
immediately usable here (and in every wrapper) by name.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass, field

from repro.api.batch import BatchRunner, chunk_ranges
from repro.api.defect_models import DefectModel, resolve_defect_model
from repro.api.registry import Mapper, resolve_mappers
from repro.api.seeding import derive_seed
from repro.boolean.function import BooleanFunction
from repro.defects.batch import repair_spare_columns
from repro.defects.types import DefectProfile
from repro.engines import (
    MAPPING_ENGINES,
    canonical_engine,
    resolve_mapping_engine,
)
from repro.exceptions import ExperimentError
from repro.mapping.batch_kernel import map_sample_batch
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.validate import validate_assignment

#: Concrete engines a Monte-Carlo chunk can run on (``"auto"`` has
#: already been resolved by the time a chunk task is built; see
#: :mod:`repro.engines`).
ENGINES = ("compiled", "vectorized", "reference")

#: Engines sharing the batched tensor pipeline (the compiled tier is
#: the vectorized pipeline with native replicas for the undecided
#: remainder).
_BATCHED_ENGINES = ("compiled", "vectorized")

#: Floor on the auto chunk size under the vectorized engine: batched
#: tensor passes need a minimum chunk to amortise, and tiny chunks would
#: also re-pay the FunctionMatrix build per chunk.
VECTORIZED_MIN_CHUNK = 32

__all__ = [
    "ENGINES",
    "MAPPING_ENGINES",
    "AlgorithmOutcome",
    "MonteCarloResult",
    "canonical_engine",
    "repair_spare_columns",
    "resolve_mapping_engine",
    "run_mapping_monte_carlo",
]


@dataclass
class AlgorithmOutcome:
    """Aggregated Monte-Carlo outcome of one mapping algorithm."""

    algorithm: str
    successes: int = 0
    samples: int = 0
    total_runtime: float = 0.0
    total_backtracks: int = 0
    invalid_mappings: int = 0

    @property
    def success_rate(self) -> float:
        """Fraction of samples with a valid mapping (the paper's P_succ)."""
        if self.samples == 0:
            return 0.0
        return self.successes / self.samples

    @property
    def mean_runtime(self) -> float:
        """Average wall-clock mapping time per sample, in seconds."""
        if self.samples == 0:
            return 0.0
        return self.total_runtime / self.samples

    def merge(self, other: "AlgorithmOutcome") -> None:
        """Fold another partial outcome of the same algorithm into this one."""
        if other.algorithm != self.algorithm:
            raise ExperimentError(
                f"cannot merge outcome of {other.algorithm!r} into "
                f"{self.algorithm!r}"
            )
        self.successes += other.successes
        self.samples += other.samples
        self.total_runtime += other.total_runtime
        self.total_backtracks += other.total_backtracks
        self.invalid_mappings += other.invalid_mappings

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AlgorithmOutcome":
        """Rebuild an outcome serialized by :meth:`to_dict`."""
        return cls(**payload)


def _coalesce_ranges(ranges) -> list[list[int]]:
    """Sort half-open ``[start, stop)`` ranges and fuse the adjacent ones."""
    merged: list[list[int]] = []
    for start, stop in sorted(tuple(span) for span in ranges):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], stop)
        else:
            merged.append([start, stop])
    return merged


@dataclass
class MonteCarloResult:
    """Full result of one Monte-Carlo mapping experiment."""

    function_name: str
    defect_rate: float
    sample_size: int
    outcomes: dict[str, AlgorithmOutcome] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    workers: int = 1
    defect_model: dict | None = None
    #: Which execution engine produced the result.  Pre-engine payloads
    #: deserialise as "reference" — the behaviour they were computed with.
    engine: str = "reference"
    #: Half-open ``[start, stop)`` global sample ranges this result
    #: covers (coalesced, ascending).  :meth:`merge` uses them to refuse
    #: overlapping partials — silent double-counting when
    #: ``sample_offset`` is misused.  ``None`` on legacy payloads whose
    #: provenance is unknown; merging such a result disables the check.
    sample_ranges: list[list[int]] | None = None
    #: Normalized multi-level spec when the experiment mapped per stage
    #: (None = the classic two-level protocol).
    multilevel: dict | None = None

    def outcome(self, algorithm: str) -> AlgorithmOutcome:
        """Aggregated outcome of one algorithm."""
        try:
            return self.outcomes[algorithm]
        except KeyError:
            raise ExperimentError(
                f"no outcome for algorithm {algorithm!r}; this experiment ran "
                f"{sorted(self.outcomes)}"
            ) from None

    def counting_statistics(self) -> dict:
        """The worker- and engine-invariant projection of the result.

        Strips every wall-clock field, leaving per-algorithm counts only
        — the deterministic basis both the ``workers=1 == workers=N``
        contract and the adaptive sampler's stopping rule operate on.
        """
        return {
            name: {
                "successes": outcome.successes,
                "samples": outcome.samples,
                "total_backtracks": outcome.total_backtracks,
                "invalid_mappings": outcome.invalid_mappings,
            }
            for name, outcome in self.outcomes.items()
        }

    def yield_estimate(
        self,
        algorithm: str | None = None,
        *,
        confidence: float = 0.95,
        method: str = "wilson",
    ):
        """Success rate with a binomial CI (:mod:`repro.analysis`).

        ``algorithm`` may be omitted when the experiment raced a single
        mapper.  Returns a
        :class:`~repro.analysis.confidence.BinomialInterval` whose
        ``point`` equals :attr:`AlgorithmOutcome.success_rate`.
        """
        from repro.analysis.confidence import yield_estimate

        if algorithm is None:
            if len(self.outcomes) != 1:
                raise ExperimentError(
                    "yield_estimate() needs an explicit algorithm when the "
                    f"experiment ran {sorted(self.outcomes)}"
                )
            algorithm = next(iter(self.outcomes))
        outcome = self.outcome(algorithm)
        return yield_estimate(
            outcome.successes,
            outcome.samples,
            confidence=confidence,
            method=method,
        )

    def merge(self, other: "MonteCarloResult") -> None:
        """Fold another result over a *disjoint* sample range into this one.

        The adaptive sampler grows one experiment batch by batch: each
        batch is an independent :class:`MonteCarloResult` over its own
        slice of the global sample stream, and merging them yields
        exactly the result a single fixed-budget run over the union
        would have produced (the per-sample seed streams depend only on
        the global index).  Both results must describe the same
        *statistics contract* — function, defect model, multi-level
        spec, outcome set and disjoint sample ranges.  The engine is
        deliberately **not** part of that contract: counting statistics
        are engine-invariant, so partial results computed on different
        engines (e.g. a checkpointed campaign resumed on a machine
        where ``"auto"`` resolves differently) merge fine; the merged
        provenance records ``engine="mixed"``.
        """
        if other.function_name != self.function_name:
            raise ExperimentError(
                f"cannot merge results of {other.function_name!r} into "
                f"{self.function_name!r}"
            )
        if other.defect_model != self.defect_model:
            raise ExperimentError(
                "cannot merge results with different defect models"
            )
        if other.multilevel != self.multilevel:
            raise ExperimentError(
                f"cannot merge a result with multi-level spec "
                f"{other.multilevel!r} into one with {self.multilevel!r}"
            )
        if set(other.outcomes) != set(self.outcomes):
            raise ExperimentError(
                f"cannot merge outcomes of {sorted(other.outcomes)} into "
                f"{sorted(self.outcomes)}"
            )
        if self.sample_ranges is not None and other.sample_ranges is not None:
            overlaps = [
                (list(mine), list(theirs))
                for mine in self.sample_ranges
                for theirs in other.sample_ranges
                if mine[0] < theirs[1] and theirs[0] < mine[1]
            ]
            if overlaps:
                described = ", ".join(
                    f"[{a[0]}, {a[1]}) overlaps [{b[0]}, {b[1]})"
                    for a, b in overlaps
                )
                raise ExperimentError(
                    "cannot merge results whose global sample ranges "
                    f"intersect ({described}): the shared indices would be "
                    "double-counted; give each partial run a disjoint "
                    "sample_offset="
                )
            self.sample_ranges = _coalesce_ranges(
                self.sample_ranges + other.sample_ranges
            )
        else:
            self.sample_ranges = None
        if other.engine != self.engine:
            self.engine = "mixed"
        for name, outcome in other.outcomes.items():
            self.outcomes[name].merge(outcome)
        self.sample_size += other.sample_size
        self.elapsed_seconds += other.elapsed_seconds
        self.workers = max(self.workers, other.workers)

    def to_dict(self) -> dict:
        """JSON-safe representation.

        ``sample_ranges`` is emitted only when known, so payloads from
        before range tracking round-trip byte-identically.
        """
        payload = {
            "function_name": self.function_name,
            "defect_rate": self.defect_rate,
            "sample_size": self.sample_size,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
            "defect_model": self.defect_model,
            "engine": self.engine,
            "outcomes": {
                name: outcome.to_dict() for name, outcome in self.outcomes.items()
            },
        }
        if self.sample_ranges is not None:
            payload["sample_ranges"] = [list(span) for span in self.sample_ranges]
        if self.multilevel is not None:
            payload["multilevel"] = dict(self.multilevel)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MonteCarloResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        return cls(
            function_name=payload["function_name"],
            defect_rate=payload["defect_rate"],
            sample_size=payload["sample_size"],
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            workers=payload.get("workers", 1),
            defect_model=payload.get("defect_model"),
            engine=payload.get("engine", "reference"),
            sample_ranges=(
                [list(span) for span in payload["sample_ranges"]]
                if payload.get("sample_ranges") is not None
                else None
            ),
            multilevel=payload.get("multilevel"),
            outcomes={
                name: AlgorithmOutcome.from_dict(entry)
                for name, entry in payload["outcomes"].items()
            },
        )


@dataclass(frozen=True)
class _ChunkTask:
    """Picklable description of one chunk of the sample stream.

    Carries resolved mapper *instances* rather than registry names so
    pool workers never need the parent's registry state — a mapper
    registered at runtime works under any multiprocessing start method
    as long as its class is picklable.
    """

    function: BooleanFunction
    model: DefectModel
    rows: int
    columns: int
    required_columns: int
    mappers: dict[str, Mapper]
    seed: int
    start: int
    stop: int
    validate: bool
    engine: str = "vectorized"
    #: Normalized multi-level spec, or None for the two-level protocol.
    multilevel: dict | None = None


def _run_chunk(task: _ChunkTask) -> dict[str, AlgorithmOutcome]:
    """Map every sample of one chunk; pure function of the task."""
    if task.multilevel is not None:
        from repro.multilevel.monte_carlo import run_multilevel_chunk

        return run_multilevel_chunk(task)
    if task.engine in _BATCHED_ENGINES:
        return _run_chunk_vectorized(task)
    function_matrix = FunctionMatrix(task.function)
    mappers = task.mappers
    outcomes = {name: AlgorithmOutcome(algorithm=name) for name in mappers}
    spare_columns = task.columns > task.required_columns
    for sample in range(task.start, task.stop):
        defect_map = task.model.inject(
            task.rows, task.columns, seed=derive_seed(task.seed, sample)
        )
        if spare_columns:
            defect_map = repair_spare_columns(defect_map, task.required_columns)
            if defect_map is None:
                for outcome in outcomes.values():
                    outcome.samples += 1
                continue
        crossbar_matrix = CrossbarMatrix(defect_map)
        for name, mapper in mappers.items():
            outcome = outcomes[name]
            mapping = mapper.map(function_matrix, crossbar_matrix)
            outcome.samples += 1
            outcome.total_runtime += mapping.runtime_seconds
            outcome.total_backtracks += mapping.statistics.backtracks
            if mapping.success:
                if task.validate and not validate_assignment(
                    function_matrix, crossbar_matrix, mapping
                ):
                    outcome.invalid_mappings += 1
                else:
                    outcome.successes += 1
    return outcomes


def _run_chunk_vectorized(task: _ChunkTask) -> dict[str, AlgorithmOutcome]:
    """Map one chunk on the batched kernel; same outcome shape as serial.

    The kernel's per-sample arrays are folded into the same
    :class:`AlgorithmOutcome` partials the serial path produces, with the
    shared batched stages (defect tensor, compatibility pass, pre-screen)
    attributed evenly across the mappers so runtime totals stay
    meaningful for throughput reports.
    """
    result = map_sample_batch(
        task.function,
        task.mappers,
        task.model,
        rows=task.rows,
        columns=task.columns,
        seed=task.seed,
        start=task.start,
        stop=task.stop,
        validate=task.validate,
        engine=task.engine,
    )
    shared_share = result.shared_seconds / max(1, len(task.mappers))
    outcomes = {}
    for name, batch_outcome in result.outcomes.items():
        counts = batch_outcome.counting_statistics()
        outcomes[name] = AlgorithmOutcome(
            algorithm=name,
            successes=counts["successes"],
            samples=counts["samples"],
            total_runtime=float(batch_outcome.runtime.sum()) + shared_share,
            total_backtracks=counts["total_backtracks"],
            invalid_mappings=counts["invalid_mappings"],
        )
    return outcomes


def run_mapping_monte_carlo(
    function: BooleanFunction,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 1.0,
    sample_size: int = 200,
    algorithms: Sequence[str] | Mapping[str, Mapper] = ("hybrid", "exact"),
    seed: int = 0,
    extra_rows: int = 0,
    extra_columns: int = 0,
    validate: bool = True,
    workers: int | None = None,
    chunk_size: int | None = None,
    defect_model: DefectModel | str | dict | None = None,
    engine: str = "auto",
    sample_offset: int = 0,
    multilevel: dict | None = None,
) -> MonteCarloResult:
    """Run the paper's Monte-Carlo mapping protocol on one function.

    Parameters
    ----------
    function:
        The circuit to map; the crossbar is sized to its optimum
        dimensions plus the optional redundancy.
    defect_rate / stuck_open_fraction:
        Defect injection parameters (the paper uses 10 % stuck-open only).
        Ignored when ``defect_model`` is given.
    defect_model:
        A registered defect-model name, a
        :class:`~repro.api.defect_models.DefectModel` or its ``to_dict``
        payload; overrides ``defect_rate``/``stuck_open_fraction`` and
        selects the per-sample injector (``"clustered"``,
        ``"exact-count"``, ...).
    sample_size:
        Number of random defective crossbars (the paper uses 200).
    algorithms:
        Registered algorithm names (see
        :func:`repro.api.registry.list_mappers`) or a mapping
        ``{label: mapper instance}``.  Mapper instances must be
        stateless across ``map()`` calls (the built-ins are): with
        ``workers > 1`` every chunk receives an independent pickled
        copy, so state carried between samples would diverge from the
        serial run and void the determinism guarantee.
    extra_rows / extra_columns:
        Redundant lines beyond the optimum size (0 = the paper's setup).
    validate:
        Double-check every successful mapping at the matrix level and
        count violations separately (should always be zero).
    workers:
        ``1`` = serial, ``N`` = process pool of that size, ``None``
        (default) = auto.  The counting statistics are identical for
        every choice; only wall-clock time changes.  Auto mode gates on
        batch *size*, not per-sample cost — for small circuits whose
        whole batch maps in milliseconds, pool start-up dominates and
        ``workers=1`` is faster.
    chunk_size:
        Samples per chunk (default: auto, ~4 chunks per worker; the
        vectorized engine additionally floors the auto size so batched
        passes stay amortised).
    engine:
        ``"auto"`` (default) resolves to the fastest available tier —
        ``"compiled"`` (native replicas via :mod:`repro.compiled`,
        when a backend is available) falling back to ``"vectorized"``
        (the batched NumPy kernel of :mod:`repro.mapping.batch_kernel`).
        ``"reference"`` runs the original object-per-sample loop;
        ``"packed"`` is accepted as an alias for ``"vectorized"``.  All
        engines are differentially tested to produce identical counting
        statistics sample-for-sample; only wall-clock fields differ.
        The result records the engine that actually ran.
    sample_offset:
        First *global* sample index of this run (default 0).  Samples
        draw their defect maps from ``derive_seed(seed, index)`` of the
        global index, so a run over ``[offset, offset + sample_size)``
        reproduces exactly that slice of a larger fixed-budget run —
        the property the adaptive sampler of :mod:`repro.analysis`
        builds on to grow an experiment without re-drawing any sample.
    multilevel:
        A multi-level spec dict (see
        :func:`repro.multilevel.normalize_multilevel_spec`) switching
        the protocol to per-stage mapping: the function is
        technology-mapped into a NAND network, staged into per-level row
        banks (:mod:`repro.multilevel`), and every sample's full array —
        all banks plus shared spare columns — is mapped stage by stage,
        a sample surviving only when *every* stage maps.  ``extra_rows``
        then grants spare rows *per bank* and ``extra_columns`` spare
        columns on the shared array.  The seed streams, engine contract
        and worker invariance are identical to the two-level protocol.
    """
    if sample_size <= 0:
        raise ExperimentError("sample_size must be positive")
    if sample_offset < 0:
        raise ExperimentError(
            f"sample_offset must be non-negative, got {sample_offset}"
        )
    engine = resolve_mapping_engine(engine)
    if multilevel is not None:
        # Normalize (and validate) eagerly, and build the stage plan once
        # for sizing — workers rebuild it deterministically per chunk.
        from repro.multilevel import normalize_multilevel_spec, stage_plan_for

        multilevel = normalize_multilevel_spec(multilevel)
        stage_plan = stage_plan_for(function, multilevel)
        rows = stage_plan.physical_rows(extra_rows)
        columns = stage_plan.num_columns + extra_columns
        required_columns = stage_plan.num_columns
    else:
        function_matrix = FunctionMatrix(function)
        rows = function_matrix.num_rows + extra_rows
        columns = function_matrix.num_columns + extra_columns
        required_columns = function_matrix.num_columns
    if defect_model is None:
        # Validates the rate/fraction values eagerly, like it always has.
        DefectProfile(rate=defect_rate, stuck_open_fraction=stuck_open_fraction)
        model = DefectModel(
            "uniform",
            {"rate": defect_rate, "stuck_open_fraction": stuck_open_fraction},
        )
    else:
        model = resolve_defect_model(defect_model)
    reported_rate = model.rate if model.rate is not None else 0.0

    # Resolve eagerly so configuration errors surface before any work
    # (and before a process pool spins up).
    mappers = resolve_mappers(algorithms)

    runner = BatchRunner(workers)
    # Batched passes amortise over chunk size, so the vectorized engine
    # floors the auto chunk size; explicit chunk_size always wins.
    min_chunk = VECTORIZED_MIN_CHUNK if engine in _BATCHED_ENGINES else 1
    plan = runner.plan(sample_size, chunk_size, min_chunk_size=min_chunk)
    tasks = [
        _ChunkTask(
            function=function,
            model=model,
            rows=rows,
            columns=columns,
            required_columns=required_columns,
            mappers=mappers,
            seed=seed,
            start=sample_offset + chunk.start,
            stop=sample_offset + chunk.stop,
            validate=validate,
            engine=engine,
            multilevel=multilevel,
        )
        for chunk in chunk_ranges(sample_size, plan.chunk_size)
    ]

    result = MonteCarloResult(
        function_name=function.name or "<anonymous>",
        defect_rate=reported_rate,
        sample_size=sample_size,
        outcomes={name: AlgorithmOutcome(algorithm=name) for name in mappers},
        workers=plan.workers,
        defect_model=model.to_dict(),
        engine=engine,
        sample_ranges=[[sample_offset, sample_offset + sample_size]],
        multilevel=multilevel,
    )

    start = time.perf_counter()
    for partial in runner.run(_run_chunk, tasks, total_items=sample_size):
        for name, outcome in partial.items():
            result.outcomes[name].merge(outcome)
    result.elapsed_seconds = time.perf_counter() - start
    result.workers = runner.last_run_workers or 1
    return result
