"""Generic Monte-Carlo harness for defect-tolerant mapping experiments.

All of the paper's §V results follow the same protocol: generate many
defective crossbars for an optimum-size design at a given defect rate,
run one or more mapping algorithms on each, and report per-algorithm
success rates and runtimes.  :func:`run_mapping_monte_carlo` implements
that protocol once so Table II, the defect-rate sweep and the redundancy
study are thin wrappers around it.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.boolean.function import BooleanFunction
from repro.defects.injection import inject_uniform
from repro.defects.types import DefectProfile
from repro.exceptions import ExperimentError
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.exact import ExactMapper
from repro.mapping.function_matrix import FunctionMatrix
from repro.mapping.hybrid import GreedyMapper, HybridMapper
from repro.mapping.validate import validate_assignment


@dataclass
class AlgorithmOutcome:
    """Aggregated Monte-Carlo outcome of one mapping algorithm."""

    algorithm: str
    successes: int = 0
    samples: int = 0
    total_runtime: float = 0.0
    total_backtracks: int = 0
    invalid_mappings: int = 0

    @property
    def success_rate(self) -> float:
        """Fraction of samples with a valid mapping (the paper's P_succ)."""
        if self.samples == 0:
            return 0.0
        return self.successes / self.samples

    @property
    def mean_runtime(self) -> float:
        """Average wall-clock mapping time per sample, in seconds."""
        if self.samples == 0:
            return 0.0
        return self.total_runtime / self.samples


@dataclass
class MonteCarloResult:
    """Full result of one Monte-Carlo mapping experiment."""

    function_name: str
    defect_rate: float
    sample_size: int
    outcomes: dict[str, AlgorithmOutcome] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def outcome(self, algorithm: str) -> AlgorithmOutcome:
        """Aggregated outcome of one algorithm."""
        return self.outcomes[algorithm]


#: Default algorithm factory map used by the experiments.
DEFAULT_ALGORITHMS = {
    "hybrid": HybridMapper,
    "exact": ExactMapper,
}

ALGORITHM_FACTORIES = {
    "hybrid": HybridMapper,
    "exact": ExactMapper,
    "greedy": GreedyMapper,
}


def run_mapping_monte_carlo(
    function: BooleanFunction,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 1.0,
    sample_size: int = 200,
    algorithms: Sequence[str] | Mapping[str, object] = ("hybrid", "exact"),
    seed: int = 0,
    extra_rows: int = 0,
    extra_columns: int = 0,
    validate: bool = True,
) -> MonteCarloResult:
    """Run the paper's Monte-Carlo mapping protocol on one function.

    Parameters
    ----------
    function:
        The circuit to map; the crossbar is sized to its optimum
        dimensions plus the optional redundancy.
    defect_rate / stuck_open_fraction:
        Defect injection parameters (the paper uses 10 % stuck-open only).
    sample_size:
        Number of random defective crossbars (the paper uses 200).
    algorithms:
        Algorithm names from ``{"hybrid", "exact", "greedy"}`` or a
        mapping ``{label: mapper instance}``.
    extra_rows / extra_columns:
        Redundant lines beyond the optimum size (0 = the paper's setup).
    validate:
        Double-check every successful mapping at the matrix level and
        count violations separately (should always be zero).
    """
    if sample_size <= 0:
        raise ExperimentError("sample_size must be positive")
    function_matrix = FunctionMatrix(function)
    rows = function_matrix.num_rows + extra_rows
    columns = function_matrix.num_columns + extra_columns
    profile = DefectProfile(rate=defect_rate, stuck_open_fraction=stuck_open_fraction)

    if isinstance(algorithms, Mapping):
        mappers = dict(algorithms)
    else:
        mappers = {}
        for name in algorithms:
            if name not in ALGORITHM_FACTORIES:
                raise ExperimentError(
                    f"unknown algorithm {name!r}; expected one of "
                    f"{sorted(ALGORITHM_FACTORIES)}"
                )
            mappers[name] = ALGORITHM_FACTORIES[name]()

    result = MonteCarloResult(
        function_name=function.name or "<anonymous>",
        defect_rate=defect_rate,
        sample_size=sample_size,
        outcomes={name: AlgorithmOutcome(algorithm=name) for name in mappers},
    )

    start = time.perf_counter()
    for sample in range(sample_size):
        defect_map = inject_uniform(
            rows, columns, profile, seed=seed * 1_000_003 + sample
        )
        if extra_columns > 0:
            defect_map = _repair_columns(
                defect_map, function_matrix.num_columns
            )
            if defect_map is None:
                for outcome in result.outcomes.values():
                    outcome.samples += 1
                continue
        crossbar_matrix = CrossbarMatrix(defect_map)
        for name, mapper in mappers.items():
            outcome = result.outcomes[name]
            mapping = mapper.map(function_matrix, crossbar_matrix)
            outcome.samples += 1
            outcome.total_runtime += mapping.runtime_seconds
            outcome.total_backtracks += mapping.statistics.backtracks
            if mapping.success:
                if validate and not validate_assignment(
                    function_matrix, crossbar_matrix, mapping
                ):
                    outcome.invalid_mappings += 1
                else:
                    outcome.successes += 1
    result.elapsed_seconds = time.perf_counter() - start
    return result


def _repair_columns(defect_map, required_columns: int):
    """Steer the design onto the best functional columns (spares present).

    Columns poisoned by stuck-closed defects are skipped; among the
    remaining ones the ``required_columns`` with the fewest defects are
    kept (ties broken by position).  Returns the restricted defect map or
    ``None`` when too few usable columns remain.
    """
    usable = defect_map.usable_columns()
    if len(usable) < required_columns:
        return None
    defects_per_column = [0] * defect_map.columns
    for defect in defect_map:
        defects_per_column[defect.column] += 1
    ranked = sorted(usable, key=lambda column: (defects_per_column[column], column))
    kept = sorted(ranked[:required_columns])
    return defect_map.restricted_to_columns(kept)
