"""Two-level vs multi-level area/yield trade-off study.

The paper argues (§III, Fig. 6) that multi-level realisation saves area
over the flat two-level crossbar; the defect-tolerance extension of this
repo adds the other axis: how does each realisation *yield* under
defects, per unit of area?  The multi-level array maps each logic level
onto its own small row bank (:mod:`repro.multilevel`), so a defect only
has to be avoided within one bank — but the network survives only when
*every* bank maps, and the staged array's shape differs from the
two-level one.  This module predeclares that comparison as a scenario
suite: for each circuit one two-level and one multi-level mapping
scenario over the same defect model, seed stream and redundancy ladder,
reported side by side with Wilson confidence intervals and exact area
accounting (:mod:`repro.synth.area` for the staged design).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.defect_models import create_defect_model
from repro.api.runner import run_scenario
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.circuits.registry import get_benchmark
from repro.exceptions import ExperimentError
from repro.experiments.report import format_table
from repro.mapping.function_matrix import FunctionMatrix

#: Circuits the predeclared trade-off suite compares.
TRADEOFF_CIRCUITS: tuple[str, ...] = ("rd53", "misex1")

#: Redundancy ladder of the predeclared suite: the optimum-size array
#: and one spare row per bank (multi-level) / one spare row (two-level)
#: plus one spare column.
TRADEOFF_REDUNDANCY: tuple[tuple[int, int], ...] = ((0, 0), (1, 1))


@dataclass
class TradeoffPoint:
    """One (circuit, variant, redundancy) cell of the comparison."""

    circuit: str
    variant: str
    extra_rows: int
    extra_columns: int
    rows: int
    columns: int
    yield_point: float
    yield_lower: float
    yield_upper: float
    samples: int

    @property
    def area(self) -> int:
        """Physical crossbar area including redundancy."""
        return self.rows * self.columns


@dataclass
class TradeoffResult:
    """The full two-level vs multi-level comparison."""

    defect_rate: float
    sample_size: int
    seed: int
    strategy: str
    points: list[TradeoffPoint] = field(default_factory=list)

    def point(
        self, circuit: str, variant: str, redundancy: tuple[int, int] = (0, 0)
    ) -> TradeoffPoint:
        """Fetch one cell of the comparison."""
        for point in self.points:
            if (
                point.circuit == circuit
                and point.variant == variant
                and (point.extra_rows, point.extra_columns) == tuple(redundancy)
            ):
                return point
        raise ExperimentError(
            f"no trade-off point for {circuit!r}/{variant!r} at {redundancy}"
        )

    def render(self) -> str:
        """Monospaced rendering of the area/yield table."""
        headers = [
            "circuit",
            "variant",
            "+rows",
            "+cols",
            "array",
            "area",
            "yield",
            "95% CI",
        ]
        body = []
        for p in self.points:
            body.append(
                [
                    p.circuit,
                    p.variant,
                    p.extra_rows,
                    p.extra_columns,
                    f"{p.rows}x{p.columns}",
                    p.area,
                    f"{p.yield_point:.2f}",
                    f"[{p.yield_lower:.2f}, {p.yield_upper:.2f}]",
                ]
            )
        title = (
            f"Two-level vs multi-level area/yield trade-off "
            f"(defect rate {self.defect_rate:.0%}, {self.sample_size} "
            f"samples/point, strategy {self.strategy!r})"
        )
        return format_table(headers, body, title=title)


def paper_suite(
    circuits: tuple[str, ...] = TRADEOFF_CIRCUITS,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 1.0,
    redundancy: tuple[tuple[int, int], ...] = TRADEOFF_REDUNDANCY,
    sample_size: int = 60,
    algorithms: tuple[str, ...] = ("hybrid",),
    strategy: str = "best",
    seed: int = 11,
) -> ScenarioSuite:
    """The trade-off study as a declarative scenario suite.

    Two scenarios per circuit — ``tradeoff-<name>-two-level`` and
    ``tradeoff-<name>-multi-level`` — identical except for the
    ``multilevel`` option, so the comparison isolates the realisation
    style (same mappers, defect model, redundancy ladder and root seed).
    """
    scenarios = []
    for name in circuits:
        source = FunctionSource.benchmark(name)
        common = dict(
            source=source,
            mappers=tuple(algorithms),
            defect_model=create_defect_model(
                "uniform",
                rate=defect_rate,
                stuck_open_fraction=stuck_open_fraction,
            ),
            redundancy=tuple(redundancy),
            samples=sample_size,
            seed=seed,
        )
        scenarios.append(Scenario(name=f"tradeoff-{name}-two-level", **common))
        scenarios.append(
            Scenario(
                name=f"tradeoff-{name}-multi-level",
                options={"multilevel": {"strategy": strategy}},
                **common,
            )
        )
    return ScenarioSuite("tradeoff", tuple(scenarios))


def run_tradeoff(
    circuits: tuple[str, ...] = TRADEOFF_CIRCUITS,
    *,
    defect_rate: float = 0.10,
    stuck_open_fraction: float = 1.0,
    redundancy: tuple[tuple[int, int], ...] = TRADEOFF_REDUNDANCY,
    sample_size: int = 60,
    algorithms: tuple[str, ...] = ("hybrid",),
    strategy: str = "best",
    seed: int = 11,
    workers: int | None = None,
    engine: str = "vectorized",
) -> TradeoffResult:
    """Run the two-level vs multi-level comparison end to end.

    Thin wrapper over :func:`paper_suite` + the unified scenario runner;
    yields carry Wilson 95 % confidence intervals, areas are the exact
    physical array sizes (per-bank spare rows for the staged variant).
    """
    from repro.multilevel import stage_plan_for

    suite = paper_suite(
        circuits,
        defect_rate=defect_rate,
        stuck_open_fraction=stuck_open_fraction,
        redundancy=redundancy,
        sample_size=sample_size,
        algorithms=algorithms,
        strategy=strategy,
        seed=seed,
    )
    tracked = algorithms[0]
    result = TradeoffResult(
        defect_rate=defect_rate,
        sample_size=sample_size,
        seed=seed,
        strategy=strategy,
    )
    for circuit in circuits:
        function = get_benchmark(circuit)
        fm = FunctionMatrix(function)
        plan = stage_plan_for(function, {"strategy": strategy})
        for variant in ("two-level", "multi-level"):
            scenario = suite.scenario(f"tradeoff-{circuit}-{variant}")
            scenario_result = run_scenario(
                scenario, workers=workers, engine=engine
            )
            for extra_rows, extra_columns in redundancy:
                monte_carlo = scenario_result.monte_carlo(
                    (extra_rows, extra_columns)
                )
                estimate = monte_carlo.yield_estimate(tracked)
                if variant == "two-level":
                    rows = fm.num_rows + extra_rows
                    columns = fm.num_columns + extra_columns
                else:
                    rows = plan.physical_rows(extra_rows)
                    columns = plan.num_columns + extra_columns
                result.points.append(
                    TradeoffPoint(
                        circuit=circuit,
                        variant=variant,
                        extra_rows=extra_rows,
                        extra_columns=extra_columns,
                        rows=rows,
                        columns=columns,
                        yield_point=estimate.point,
                        yield_lower=estimate.lower,
                        yield_upper=estimate.upper,
                        samples=estimate.samples,
                    )
                )
    return result
