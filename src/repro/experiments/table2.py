"""Table II: HBA vs EA success rate and runtime at 10 % defect rate.

For every benchmark the paper maps 200 randomly defective, optimum-size
crossbars (10 % stuck-at-open rate) with both the proposed hybrid
algorithm (HBA) and the exact algorithm (EA), and reports the success
rate and the average runtime of each.  The qualitative claims we verify:

* HBA is faster than EA on every benchmark, by one to two orders of
  magnitude on the larger ones;
* EA's success rate is an upper bound on HBA's, with a gap of at most
  roughly 15 percentage points;
* circuits with higher inclusion ratios are harder to map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.defect_models import create_defect_model
from repro.api.runner import run_scenario, run_suite
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.boolean.function import BooleanFunction
from repro.circuits.registry import get_benchmark_spec
from repro.circuits.specs import all_table2_names
from repro.crossbar.metrics import two_level_area_of
from repro.experiments.monte_carlo import MonteCarloResult
from repro.experiments.report import format_percent, format_runtime, format_table
from repro.mapping.function_matrix import FunctionMatrix

#: The paper's Table II success rates (%) and runtimes (s): (HBA, EA).
PAPER_TABLE2_RESULTS: dict[str, tuple[int, float, int, float]] = {
    "rd53": (98, 0.001, 98, 0.001),
    "squar5": (100, 0.001, 100, 0.001),
    "bw": (100, 0.002, 100, 0.003),
    "inc": (100, 0.001, 100, 0.002),
    "misex1": (100, 0.001, 100, 0.001),
    "sqrt8": (100, 0.001, 100, 0.002),
    "sao2": (94, 0.001, 97, 0.003),
    "rd73": (78, 0.002, 92, 0.013),
    "clip": (76, 0.005, 79, 0.082),
    "rd84": (82, 0.006, 89, 0.093),
    "ex1010": (100, 0.003, 100, 0.062),
    "table3": (100, 0.004, 100, 0.032),
    "misex3c": (100, 0.003, 100, 0.035),
    "exp5": (65, 0.006, 80, 0.024),
    "apex4": (100, 0.008, 100, 0.173),
    "alu4": (100, 0.008, 100, 0.284),
}


@dataclass
class Table2Row:
    """Measured and paper-reported results for one benchmark."""

    name: str
    inputs: int
    outputs: int
    products: int
    area: int
    inclusion_ratio: float
    hba_success: float
    hba_runtime: float
    ea_success: float
    ea_runtime: float
    paper_hba_success: float | None = None
    paper_hba_runtime: float | None = None
    paper_ea_success: float | None = None
    paper_ea_runtime: float | None = None

    @property
    def speedup(self) -> float:
        """EA runtime divided by HBA runtime (≥ 1 means HBA is faster)."""
        if self.hba_runtime <= 0:
            return float("inf")
        return self.ea_runtime / self.hba_runtime

    @property
    def success_gap(self) -> float:
        """EA success rate minus HBA success rate (fractional)."""
        return self.ea_success - self.hba_success


@dataclass
class Table2Result:
    """All rows of the regenerated Table II."""

    defect_rate: float
    sample_size: int
    rows: list[Table2Row] = field(default_factory=list)

    def row(self, name: str) -> Table2Row:
        """Fetch one row by benchmark name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        """Monospaced rendering of the table."""
        headers = [
            "Name", "I", "O", "P", "Area", "IR",
            "HBA Psucc", "HBA time", "EA Psucc", "EA time", "speedup",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    row.name,
                    row.inputs,
                    row.outputs,
                    row.products,
                    row.area,
                    f"{row.inclusion_ratio:.0%}",
                    format_percent(row.hba_success),
                    format_runtime(row.hba_runtime),
                    format_percent(row.ea_success),
                    format_runtime(row.ea_runtime),
                    f"{row.speedup:.1f}x",
                ]
            )
        title = (
            f"Table II: HBA vs EA, optimum-size crossbars, "
            f"{self.defect_rate:.0%} stuck-open defects, "
            f"{self.sample_size} samples"
        )
        return format_table(headers, body, title=title)


def paper_suite(
    benchmark_names: list[str] | None = None,
    *,
    defect_rate: float = 0.10,
    sample_size: int = 200,
    seed: int = 0,
    variant: str = "table2",
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
) -> ScenarioSuite:
    """The paper's Table II workload as a declarative scenario suite.

    One scenario per benchmark: optimum-size crossbar, uniform
    stuck-open defects at ``defect_rate``, HBA raced against EA.
    """
    names = benchmark_names or all_table2_names()
    return ScenarioSuite(
        "table2",
        tuple(
            Scenario(
                name=name,
                source=FunctionSource.benchmark(name, variant=variant),
                mappers=tuple(algorithms),
                defect_model=create_defect_model("uniform", rate=defect_rate),
                samples=sample_size,
                seed=seed,
            )
            for name in names
        ),
    )


def _row_from_monte_carlo(
    function: BooleanFunction, monte_carlo: MonteCarloResult
) -> Table2Row:
    """Condense one benchmark's Monte-Carlo outcome into a table row."""
    function_matrix = FunctionMatrix(function)
    hba = monte_carlo.outcome("hybrid")
    ea = monte_carlo.outcome("exact") if "exact" in monte_carlo.outcomes else hba
    name = function.name or "<anonymous>"
    paper = PAPER_TABLE2_RESULTS.get(name.split("_")[0])
    return Table2Row(
        name=name,
        inputs=function.num_inputs,
        outputs=function.num_outputs,
        products=function.num_products,
        area=two_level_area_of(function),
        inclusion_ratio=function_matrix.inclusion_ratio(),
        hba_success=hba.success_rate,
        hba_runtime=hba.mean_runtime,
        ea_success=ea.success_rate,
        ea_runtime=ea.mean_runtime,
        paper_hba_success=paper[0] / 100 if paper else None,
        paper_hba_runtime=paper[1] if paper else None,
        paper_ea_success=paper[2] / 100 if paper else None,
        paper_ea_runtime=paper[3] if paper else None,
    )


def run_table2_row(
    function: BooleanFunction,
    *,
    defect_rate: float = 0.10,
    sample_size: int = 200,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("hybrid", "exact"),
    workers: int | None = None,
) -> Table2Row:
    """Run the Monte-Carlo protocol for one circuit and collect a row.

    Thin wrapper: the function is embedded into an ad-hoc
    :class:`Scenario` and dispatched through the unified runner.
    """
    scenario = Scenario(
        name=function.name or "<anonymous>",
        source=FunctionSource.from_function(function),
        mappers=tuple(algorithms),
        defect_model=create_defect_model("uniform", rate=defect_rate),
        samples=sample_size,
        seed=seed,
    )
    monte_carlo = run_scenario(scenario, workers=workers).monte_carlo()
    return _row_from_monte_carlo(function, monte_carlo)


def run_table2(
    benchmark_names: list[str] | None = None,
    *,
    defect_rate: float = 0.10,
    sample_size: int = 200,
    seed: int = 0,
    variant: str = "table2",
    workers: int | None = None,
) -> Table2Result:
    """Regenerate Table II for the given benchmarks (default: all 16).

    Thin wrapper over :func:`paper_suite` + the unified scenario runner;
    ``workers`` is forwarded to the Monte-Carlo batch engine (``None`` =
    auto); each row's sample stream is parallelised independently.
    """
    suite = paper_suite(
        benchmark_names,
        defect_rate=defect_rate,
        sample_size=sample_size,
        seed=seed,
        variant=variant,
    )
    result = Table2Result(defect_rate=defect_rate, sample_size=sample_size)
    for scenario, scenario_result in zip(suite, run_suite(suite, workers=workers)):
        spec = get_benchmark_spec(scenario.name, variant=variant)
        # When the paper mapped the dual, the spec's products already refer
        # to the mapped (complemented) implementation, so no extra work is
        # needed here; the flag is carried through for reporting.
        row = _row_from_monte_carlo(
            scenario.source.build(), scenario_result.monte_carlo()
        )
        row.name = scenario.name if not spec.dual_selected else f"{scenario.name}*"
        result.rows.append(row)
    return result
