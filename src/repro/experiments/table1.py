"""Table I: two-level vs multi-level area on benchmark circuits.

For each benchmark the paper reports four areas: two-level and
multi-level cost of the original circuit and of its complement ("negation
of circuit").  The two-level numbers follow directly from the product
counts; the multi-level numbers come from the NAND technology mapping.
The paper's conclusion — multi-level synthesis through a generic EDA flow
is drastically worse for multi-output benchmarks and only wins for the
(nearly) single-output ones such as ``t481`` and ``cordic`` — is a
structural effect our mapper reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.boolean.function import BooleanFunction
from repro.circuits.registry import get_benchmark_pair
from repro.circuits.specs import (
    TABLE1_PAPER_MULTILEVEL,
    TABLE1_SPECS,
    all_table1_names,
)
from repro.crossbar.metrics import two_level_area_of
from repro.experiments.report import format_table
from repro.synth.area import multilevel_area
from repro.synth.tech_map import MappingOptions, technology_map


@dataclass
class Table1Row:
    """Measured and paper-reported areas for one benchmark."""

    name: str
    two_level_original: int
    multi_level_original: int
    two_level_complement: int | None
    multi_level_complement: int | None
    paper_two_level_original: int | None
    paper_multi_level_original: int | None
    paper_two_level_complement: int | None
    paper_multi_level_complement: int | None

    @property
    def multi_level_penalty(self) -> float:
        """Measured multi-level / two-level area ratio of the original."""
        return self.multi_level_original / max(1, self.two_level_original)


@dataclass
class Table1Result:
    """All rows of the regenerated Table I."""

    rows: list[Table1Row] = field(default_factory=list)

    def row(self, name: str) -> Table1Row:
        """Fetch one row by benchmark name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        """Monospaced rendering of the table."""
        headers = [
            "Bench",
            "2L (ours)",
            "ML (ours)",
            "2L neg (ours)",
            "ML neg (ours)",
            "2L (paper)",
            "ML (paper)",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    row.name,
                    row.two_level_original,
                    row.multi_level_original,
                    row.two_level_complement if row.two_level_complement else "-",
                    row.multi_level_complement if row.multi_level_complement else "-",
                    row.paper_two_level_original or "-",
                    row.paper_multi_level_original or "-",
                ]
            )
        return format_table(
            headers, body, title="Table I: two-level vs multi-level area cost"
        )


def multi_level_cost_of(function: BooleanFunction, *, max_fanin: int | None = None) -> int:
    """Multi-level crossbar area of a function via NAND technology mapping."""
    network = technology_map(
        function, options=MappingOptions(max_fanin=max_fanin, strategy="best")
    )
    return multilevel_area(network)


def run_table1(
    benchmark_names: list[str] | None = None, *, seed: int = 0
) -> Table1Result:
    """Regenerate Table I for the given benchmarks (default: all nine)."""
    names = benchmark_names or all_table1_names()
    result = Table1Result()
    for name in names:
        spec = TABLE1_SPECS[name]
        original, complement = get_benchmark_pair(name, seed=seed)
        paper_ml = TABLE1_PAPER_MULTILEVEL.get(name)
        two_level_complement = (
            two_level_area_of(complement) if complement is not None else None
        )
        multi_level_complement = (
            multi_level_cost_of(complement) if complement is not None else None
        )
        result.rows.append(
            Table1Row(
                name=name,
                two_level_original=two_level_area_of(original),
                multi_level_original=multi_level_cost_of(original),
                two_level_complement=two_level_complement,
                multi_level_complement=multi_level_complement,
                paper_two_level_original=spec.paper_area,
                paper_multi_level_original=paper_ml[0] if paper_ml else None,
                paper_two_level_complement=spec.paper_complement_area,
                paper_multi_level_complement=paper_ml[1] if paper_ml else None,
            )
        )
    return result
