"""The ``python -m repro`` command-line interface.

Every experiment in the repository — the paper's Table II, the
defect-rate sweep, the redundancy/yield study, Fig. 6, plus any
scenario or suite saved as JSON — runs from one command, and the
adaptive yield-analysis layer (:mod:`repro.analysis`) runs from
another::

    python -m repro run table2 --samples 5 --workers 2 --jsonl out.jsonl
    python -m repro run sweep --engine reference   # object-path ground truth
    python -m repro run my_scenario.json --json
    python -m repro analyze curve --tolerance 0.005
    python -m repro analyze spares --target-yield 0.9
    python -m repro list mappers

``run`` and ``analyze`` stream results into a JSONL artifact store
keyed by the content hash of each spec; an immediate re-run with the
same spec is a cache hit (no recomputation) and ``--force`` recomputes.
``--out`` writes the rendered tables to a file (markdown when it ends
in ``.md``), ``--json`` prints the full machine-readable result to
stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable
from pathlib import Path

from repro.api.artifacts import ArtifactStore
from repro.api.scenarios import Scenario, ScenarioSuite
from repro.engines import ENGINE_CHOICES, canonical_engine
from repro.exceptions import ExperimentError, ReproError

#: Default artifact-store location when ``--jsonl`` is not given.
DEFAULT_STORE = ".repro/artifacts.jsonl"

#: Default chunk-checkpoint directory of ``repro serve``.
DEFAULT_CHECKPOINTS = ".repro/checkpoints"

#: The experiment targets predeclared by the experiment modules.
BUILTIN_TARGETS = ("table2", "sweep", "redundancy", "figure6", "tradeoff")


def builtin_suites() -> dict[str, Callable[..., ScenarioSuite]]:
    """``{target: paper_suite factory}`` for the predeclared experiments."""
    from repro.experiments import (
        defect_sweep,
        figure6,
        redundancy,
        table2,
        tradeoff,
    )

    return {
        "table2": table2.paper_suite,
        "sweep": defect_sweep.paper_suite,
        "redundancy": redundancy.paper_suite,
        "figure6": figure6.paper_suite,
        "tradeoff": tradeoff.paper_suite,
    }


def resolve_target(target: str) -> ScenarioSuite:
    """Resolve a ``run`` target into a suite.

    Accepted targets: a builtin experiment name (``table2``, ``sweep``,
    ``redundancy``, ``figure6``, ``tradeoff``), a path to a
    scenario/suite JSON file, or the name of one scenario inside a
    builtin suite.
    """
    factories = builtin_suites()
    if target in factories:
        return factories[target]()
    path = Path(target)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise ExperimentError(f"no such scenario file: {target}")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ExperimentError(
                f"cannot read {target} as a scenario/suite JSON file: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"{target} must contain a JSON object, not "
                f"{type(payload).__name__}"
            )
        try:
            if "scenarios" in payload:
                return ScenarioSuite.from_dict(payload)
            if "source" in payload:
                scenario = Scenario.from_dict(payload)
                return ScenarioSuite(scenario.name, (scenario,))
        except (KeyError, TypeError) as error:
            raise ExperimentError(
                f"{target} is not a valid scenario/suite spec: {error!r}"
            ) from None
        raise ExperimentError(
            f"{target} is neither a scenario (needs a 'source' key) nor a "
            "suite (needs a 'scenarios' key)"
        )
    for factory in factories.values():
        suite = factory()
        for scenario in suite:
            if scenario.name == target:
                return ScenarioSuite(scenario.name, (scenario,))
    raise ExperimentError(
        f"unknown target {target!r}; expected one of {list(BUILTIN_TARGETS)}, "
        "a scenario name from `repro list scenarios`, or a path to a "
        "scenario/suite JSON file"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "mappers":
        from repro.api.registry import list_mappers

        for name in list_mappers():
            print(name)
    elif args.what == "defect-models":
        from repro.api.defect_models import list_defect_models

        for name in list_defect_models():
            print(name)
    else:
        for target, factory in builtin_suites().items():
            suite = factory()
            print(f"{target} ({len(suite)} scenarios)")
            for scenario in suite:
                print(f"  {scenario.describe()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.runner import run_suite

    suite = resolve_target(args.target)
    suite = suite.with_overrides(
        samples=args.samples, seed=args.seed, tolerance=args.tolerance
    )
    store = ArtifactStore(args.jsonl or DEFAULT_STORE)

    total = len(suite)
    done = 0

    def progress(scenario: Scenario, result) -> None:
        nonlocal done
        done += 1
        status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
        print(
            f"[{done}/{total}] {scenario.name}: {len(result.rows)} rows "
            f"({status}, workers={result.workers})",
            file=sys.stderr,
        )

    results = run_suite(
        suite,
        workers=args.workers,
        engine=canonical_engine(args.engine),
        force=args.force,
        store=store,
        progress=progress,
    )

    if args.out:
        out_path = Path(args.out)
        style = "markdown" if out_path.suffix == ".md" else "monospace"
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(results.render(style=style) + "\n")
        print(f"wrote {out_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(results.to_dict(), indent=2, sort_keys=True))
    elif not args.out:
        print(results.render())
    return 0


#: Default circuit per ``analyze`` mode (all three are golden-pinned or
#: canonical demo circuits).
ANALYZE_DEFAULT_CIRCUITS = {"yield": "rd53", "curve": "misex1", "spares": "rd53"}

#: Default defect rates swept by ``analyze curve``.
ANALYZE_DEFAULT_RATES = (0.02, 0.05, 0.10, 0.15)


def _parse_floats(text: str, option: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ExperimentError(
            f"{option} expects comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise ExperimentError(f"{option} needs at least one value")
    return values


def _parse_redundancy(text: str) -> tuple[int, int]:
    parts = text.split(",")
    if len(parts) != 2:
        raise ExperimentError(
            f"--redundancy expects ROWS,COLS, got {text!r}"
        )
    try:
        rows, columns = int(parts[0]), int(parts[1])
    except ValueError:
        raise ExperimentError(
            f"--redundancy expects ROWS,COLS integers, got {text!r}"
        ) from None
    if rows < 0 or columns < 0:
        raise ExperimentError(
            f"--redundancy expects non-negative counts, got {text!r}"
        )
    return rows, columns


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AdaptiveResult,
        SpareSearchResult,
        YieldCurve,
        cached_analysis,
        compute_yield_curve,
        optimize_spares,
        run_adaptive_monte_carlo,
    )
    from repro.circuits.registry import get_benchmark

    circuit = args.circuit or ANALYZE_DEFAULT_CIRCUITS[args.what]
    algorithms = tuple(
        part.strip() for part in args.algorithms.split(",") if part.strip()
    )
    if not algorithms:
        raise ExperimentError(
            f"--algorithms needs at least one mapper name, got "
            f"{args.algorithms!r}"
        )
    if args.what == "spares":
        # The spare search races a single mapper.
        algorithms = algorithms[:1]
    engine = canonical_engine(args.engine)
    tolerance = args.tolerance
    if args.what == "yield" and tolerance is None:
        tolerance = 0.01  # yield mode is always adaptive

    # Mode-specific flags parse with a None default so a flag given to
    # the wrong mode errors instead of being silently ignored (and
    # silently absent from the cache spec).
    def mode_option(value, default, option: str, *modes: str):
        if value is not None and args.what not in modes:
            raise ExperimentError(
                f"{option} only applies to `analyze "
                f"{'/'.join(modes)}`, not `analyze {args.what}`"
            )
        return default if value is None else value

    rate = mode_option(args.rate, 0.10, "--rate", "yield", "spares")
    rates_text = mode_option(args.rates, None, "--rates", "curve")
    redundancy_text = mode_option(
        args.redundancy, "0,0", "--redundancy", "yield"
    )
    multilevel_strategy = mode_option(
        args.multilevel, None, "--multilevel", "yield"
    )
    multilevel = (
        {"strategy": multilevel_strategy} if multilevel_strategy else None
    )
    target_yield = mode_option(
        args.target_yield, 0.9, "--target-yield", "spares"
    )
    criterion = mode_option(args.criterion, "point", "--criterion", "spares")
    max_rows = mode_option(args.max_rows, 6, "--max-rows", "spares")
    max_cols = mode_option(args.max_cols, 6, "--max-cols", "spares")
    mode_option(args.at_yield, None, "--at-yield", "curve")
    # The sampling knobs follow the same errors-not-ignored policy,
    # keyed on adaptive vs fixed-budget rather than on the mode:
    # adaptive runs never read --samples and fixed-budget runs never
    # read --max-samples.
    if args.samples is not None and tolerance is not None:
        raise ExperimentError(
            "--samples only applies to fixed-budget runs; this run is "
            "adaptive (--tolerance), cap it with --max-samples instead"
        )
    if args.max_samples is not None and tolerance is None:
        raise ExperimentError(
            "--max-samples only applies to adaptive runs; set "
            "--tolerance, or use --samples for a fixed budget"
        )
    samples = 200 if args.samples is None else args.samples
    max_samples = 100_000 if args.max_samples is None else args.max_samples
    store = ArtifactStore(args.jsonl or DEFAULT_STORE)

    # The spec carries every parameter that determines the counting
    # statistics and nothing else: no execution detail (workers/engine
    # never change a result, only its wall-clock time) and no inert
    # sampling knob — adaptive runs never read --samples, fixed-budget
    # runs never read --max-samples — so semantically identical
    # invocations hash to the same cached artifact.
    spec = {
        "analyze": args.what,
        "circuit": circuit,
        "algorithms": list(algorithms),
        "tolerance": tolerance,
        "confidence": args.confidence,
        "ci_method": args.ci_method,
        "seed": args.seed,
        "stuck_open_fraction": args.stuck_open_fraction,
    }
    if tolerance is None:
        spec["samples"] = samples
    else:
        spec["max_samples"] = max_samples
    if args.what == "curve":
        rates = (
            _parse_floats(rates_text, "--rates")
            if rates_text
            else ANALYZE_DEFAULT_RATES
        )
        # Canonical order for the cache key: the curve sorts/dedups its
        # rates anyway, so `--rates 0.1,0.05` and `--rates 0.05,0.1`
        # must hash (and cache) identically.
        rates = tuple(sorted({float(rate) for rate in rates}))
        spec["rates"] = list(rates)
    else:
        spec["rate"] = rate
    if args.what == "yield":
        redundancy = _parse_redundancy(redundancy_text)
        spec["redundancy"] = list(redundancy)
        if multilevel is not None:
            spec["multilevel"] = dict(multilevel)
    if args.what == "spares":
        spec.update(
            {
                "target_yield": target_yield,
                "criterion": criterion,
                "max_extra_rows": max_rows,
                "max_extra_columns": max_cols,
            }
        )

    def compute() -> dict:
        if args.what == "yield":
            adaptive = run_adaptive_monte_carlo(
                get_benchmark(circuit),
                tolerance=tolerance,
                confidence=args.confidence,
                method=args.ci_method,
                defect_rate=rate,
                stuck_open_fraction=args.stuck_open_fraction,
                algorithms=algorithms,
                seed=args.seed,
                extra_rows=redundancy[0],
                extra_columns=redundancy[1],
                workers=args.workers,
                engine=engine,
                max_samples=max_samples,
                multilevel=multilevel,
            )
            return {"kind": "adaptive_yield", "result": adaptive.to_dict()}
        if args.what == "curve":
            curve = compute_yield_curve(
                circuit,
                rates=rates,
                tolerance=tolerance,
                samples=samples,
                confidence=args.confidence,
                method=args.ci_method,
                algorithms=algorithms,
                stuck_open_fraction=args.stuck_open_fraction,
                seed=args.seed,
                workers=args.workers,
                engine=engine,
                max_samples=max_samples,
            )
            return {"kind": "yield_curve", "result": curve.to_dict()}
        search = optimize_spares(
            circuit,
            target_yield=target_yield,
            algorithm=algorithms[0],
            defect_rate=rate,
            stuck_open_fraction=args.stuck_open_fraction,
            max_extra_rows=max_rows,
            max_extra_columns=max_cols,
            tolerance=tolerance,
            samples=samples,
            confidence=args.confidence,
            method=args.ci_method,
            criterion=criterion,
            seed=args.seed,
            workers=args.workers,
            engine=engine,
            max_samples=max_samples,
        )
        return {"kind": "spare_search", "result": search.to_dict()}

    payload, cached = cached_analysis(store, spec, compute, force=args.force)
    print(
        f"{args.what} analysis of {circuit}: "
        + ("cached" if cached else "computed"),
        file=sys.stderr,
    )

    if payload["kind"] == "adaptive_yield":
        result = AdaptiveResult.from_dict(payload["result"])
        rendered = result.summary()
    elif payload["kind"] == "yield_curve":
        curve_result = YieldCurve.from_dict(payload["result"])
        rendered = curve_result.render()
        if args.at_yield is not None:
            lines = [rendered, ""]
            for algorithm in curve_result.algorithms:
                rate = curve_result.defect_rate_at_yield(
                    args.at_yield, algorithm
                )
                lines.append(
                    f"defect rate at {args.at_yield:.1%} yield "
                    f"[{algorithm}]: "
                    + (f"{rate:.4f}" if rate is not None else "below sweep")
                )
            rendered = "\n".join(lines)
    else:
        search_result = SpareSearchResult.from_dict(payload["result"])
        rendered = search_result.render() + "\n\n" + search_result.summary()

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rendered + "\n")
        print(f"wrote {out_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not args.out:
        print(rendered)
    return 0


def _cmd_circuits(args: argparse.Namespace) -> int:
    from repro.circuits.corpus import Corpus

    corpus = Corpus(args.corpus)
    if args.action == "ingest":
        report = corpus.ingest(args.path)
        print(report.render())
        print(f"corpus {corpus.root}: {len(corpus)} circuit(s) registered")
        # Partial success is fine (bad files are reported above); only a
        # run that registered nothing and hit errors fails.
        failed = report.errors and not (report.registered or report.duplicates)
        return 1 if failed else 0
    if args.action == "generate":
        from repro.circuits.scale import generate_corpus

        paths = generate_corpus(args.path, verbose=True)
        print(f"generated {len(paths)} file(s) under {args.path}")
        return 0
    if args.action == "list":
        entries = [corpus.info(name) for name in corpus.names()]
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
            return 0
        if not entries:
            print(f"corpus {corpus.root} is empty; run `repro circuits ingest`")
            return 0
        width = max(len(entry["name"]) for entry in entries)
        for entry in entries:
            print(
                f"{entry['name']:{width}s}  I={entry['inputs']:3d} "
                f"O={entry['outputs']:3d} P={entry['products']:4d} "
                f"lit={entry['literals']:5d}  {entry['hash'][:12]}"
            )
        return 0
    # info
    entry = corpus.info(args.name)
    if args.json:
        print(json.dumps(entry, indent=2, sort_keys=True))
    else:
        for key in sorted(entry):
            print(f"{key:12s} {entry[key]}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.http import make_server
    from repro.service.store import CheckpointStore

    server = make_server(
        args.host,
        args.port,
        checkpoints=CheckpointStore(args.checkpoints or DEFAULT_CHECKPOINTS),
        artifacts=ArtifactStore(args.jsonl or DEFAULT_STORE),
        workers=args.workers,
        engine=canonical_engine(args.engine),
        chunk_size=args.chunk_size,
        chunk_timeout=args.chunk_timeout,
        chunk_retries=args.chunk_retries,
        partial_policy=args.partial_policy,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    # The port line is machine-readable on purpose: scripts (and the CI
    # smoke test) bind --port 0 and parse the ephemeral port from it.
    print(f"repro service listening on http://{host}:{port}", flush=True)

    # Graceful drain: on SIGTERM/SIGINT stop accepting submissions
    # (503 + Retry-After), let in-flight chunks finish and checkpoint,
    # then stop the serve loop.  A second signal skips straight to the
    # hard stop.  The actual work happens on a helper thread — a signal
    # handler must not call server.shutdown() from the serve thread.
    stopping = threading.Event()

    def _drain_and_stop() -> None:
        server.runtime.begin_drain()
        print(
            f"repro service draining (grace {args.drain_grace:.0f}s)",
            flush=True,
        )
        settled = server.runtime.drain(timeout=args.drain_grace)
        print(
            "repro service drained"
            if settled
            else "repro service drain grace expired; exiting anyway",
            flush=True,
        )
        server.shutdown()

    def _handle_signal(signum, frame) -> None:
        if stopping.is_set():
            threading.Thread(target=server.shutdown, daemon=True).start()
            return
        stopping.set()
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _handle_signal)
    signal.signal(signal.SIGINT, _handle_signal)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.runtime.stop()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Declarative experiment runner for the memristive-crossbar "
            "defect-tolerance reproduction: `run` regenerates the paper's "
            "experiments, `analyze` runs the adaptive yield-analysis layer "
            "(CIs, yield curves, spare allocation), `list` enumerates the "
            "registries."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a builtin experiment, a scenario, or a JSON spec file"
    )
    run_parser.add_argument(
        "target",
        help=(
            "one of: "
            + ", ".join(BUILTIN_TARGETS)
            + "; a scenario name (see `repro list scenarios`); or a path to "
            "a scenario/suite JSON file"
        ),
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="batch-engine worker processes (default: auto; 1 = serial)",
    )
    run_parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help=(
            "execution engine: 'auto' (default) picks the fastest "
            "available tier (compiled native kernels when a backend is "
            "present, the batched NumPy kernels otherwise); 'compiled', "
            "'vectorized' ('packed' is an alias naming the bit-packed "
            "Boolean kernel the area protocol uses) and the per-sample "
            "'reference' object path select a tier explicitly; all "
            "choices produce identical counting statistics"
        ),
    )
    run_parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="override every scenario's Monte-Carlo sample count",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override every scenario's seed"
    )
    run_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "switch mapping scenarios to adaptive sampling: draw until "
            "every mapper's CI half-width reaches this value (the sample "
            "count becomes the budget ceiling)"
        ),
    )
    run_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help=f"JSONL artifact store (default: {DEFAULT_STORE})",
    )
    run_parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write rendered tables to a file (markdown when it ends in .md)",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result JSON to stdout",
    )
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the artifact store has a cached result",
    )
    run_parser.set_defaults(handler=_cmd_run)

    analyze_parser = subparsers.add_parser(
        "analyze",
        help=(
            "adaptive yield analysis: CI-bounded yield estimates, yield "
            "curves with threshold solving, spare-allocation search"
        ),
    )
    analyze_parser.add_argument(
        "what",
        choices=("yield", "curve", "spares"),
        help=(
            "yield: adaptive CI-bounded yield of one circuit; curve: "
            "yield vs defect rate with interpolated thresholds; spares: "
            "minimum-area spare allocation meeting a yield target"
        ),
    )
    analyze_parser.add_argument(
        "--circuit",
        default=None,
        help=(
            "benchmark circuit (defaults per mode: "
            + ", ".join(
                f"{mode}={name}"
                for mode, name in sorted(ANALYZE_DEFAULT_CIRCUITS.items())
            )
            + ")"
        ),
    )
    analyze_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "adaptive CI half-width target (e.g. 0.005 = +/-0.5%%); "
            "omit for a fixed --samples budget per point "
            "(analyze yield always samples adaptively, default 0.01)"
        ),
    )
    analyze_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="two-sided CI confidence level (default: 0.95)",
    )
    analyze_parser.add_argument(
        "--ci-method",
        choices=("wilson", "jeffreys"),
        default="wilson",
        help="binomial interval method (default: wilson)",
    )
    analyze_parser.add_argument(
        "--algorithms",
        default="hybrid,exact",
        help=(
            "comma-separated mapper registry names (default: hybrid,exact; "
            "spares uses the first)"
        ),
    )
    analyze_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="defect rate for yield/spares (default: 0.10)",
    )
    analyze_parser.add_argument(
        "--rates",
        default=None,
        help=(
            "comma-separated defect rates for curve (default: "
            + ",".join(f"{rate:g}" for rate in ANALYZE_DEFAULT_RATES)
            + ")"
        ),
    )
    analyze_parser.add_argument(
        "--stuck-open-fraction",
        type=float,
        default=1.0,
        help=(
            "fraction of defects stuck-open (default: 1.0, the paper's "
            "protocol; lower it to mix in stuck-closed defects)"
        ),
    )
    analyze_parser.add_argument(
        "--redundancy",
        default=None,
        metavar="ROWS,COLS",
        help="spare lines for analyze yield (default: 0,0)",
    )
    analyze_parser.add_argument(
        "--multilevel",
        default=None,
        metavar="STRATEGY",
        help=(
            "analyze yield of the staged multi-level realisation instead "
            "of the two-level array, technology-mapped with this strategy "
            "(two_level_nand, factored or best); spare rows are then "
            "granted per stage bank"
        ),
    )
    analyze_parser.add_argument(
        "--target-yield",
        type=float,
        default=None,
        help="yield target for analyze spares (default: 0.9)",
    )
    analyze_parser.add_argument(
        "--criterion",
        choices=("point", "lower"),
        default=None,
        help=(
            "spares acceptance: point estimate or CI lower bound reaches "
            "the target (default: point)"
        ),
    )
    analyze_parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        help="spare-row search bound for analyze spares (default: 6)",
    )
    analyze_parser.add_argument(
        "--max-cols",
        type=int,
        default=None,
        help="spare-column search bound for analyze spares (default: 6)",
    )
    analyze_parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="fixed per-point budget when --tolerance is not set (default: 200)",
    )
    analyze_parser.add_argument(
        "--max-samples",
        type=int,
        default=None,
        help="adaptive per-point budget ceiling (default: 100000)",
    )
    analyze_parser.add_argument(
        "--at-yield",
        type=float,
        default=None,
        help="also solve the curve for the defect rate at this yield",
    )
    analyze_parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default: 0)"
    )
    analyze_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="batch-engine worker processes (default: auto; 1 = serial)",
    )
    analyze_parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine (identical statistics, different speed)",
    )
    analyze_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help=f"JSONL artifact store (default: {DEFAULT_STORE})",
    )
    analyze_parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the rendered report to a file",
    )
    analyze_parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result JSON to stdout",
    )
    analyze_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the artifact store has a cached result",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "start the HTTP job service: submit scenarios over HTTP, "
            "shard them into checkpointed chunk jobs, resume interrupted "
            "campaigns, share one artifact cache across clients"
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8750,
        help="bind port (default: 8750; 0 = ephemeral, printed on start)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="chunk-executor worker processes (default: auto)",
    )
    serve_parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help=(
            "execution engine for chunk jobs (identical statistics; "
            "'auto' resolves per executing machine and cross-engine "
            "checkpoints merge)"
        ),
    )
    serve_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "samples per chunk job (default: auto, derived from each "
            "scenario's sample count — never from the local CPU count, so "
            "checkpoints resume across machines)"
        ),
    )
    serve_parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-chunk wall-clock deadline; a timed-out chunk counts as a "
            "transient failure and is retried (default: no deadline)"
        ),
    )
    serve_parser.add_argument(
        "--chunk-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "extra dispatches granted to a transiently failing chunk "
            "(worker death, broken pool, OS error, timeout) before it is "
            "quarantined (default: 2)"
        ),
    )
    serve_parser.add_argument(
        "--partial-policy",
        choices=("fail", "partial"),
        default="fail",
        help=(
            "what a quarantined chunk does to its job: 'fail' (default) "
            "fails the job naming the chunk; 'partial' completes the job "
            "from the surviving sample ranges and records the quarantined "
            "ranges on the job status (partial results are never cached)"
        ),
    )
    serve_parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "on SIGTERM/SIGINT, how long to wait for in-flight chunks to "
            "finish and checkpoint while answering new submissions with "
            "503 + Retry-After (default: 30)"
        ),
    )
    serve_parser.add_argument(
        "--checkpoints",
        metavar="DIR",
        default=None,
        help=f"chunk-checkpoint directory (default: {DEFAULT_CHECKPOINTS})",
    )
    serve_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help=f"shared JSONL artifact store (default: {DEFAULT_STORE})",
    )
    serve_parser.add_argument(
        "--verbose",
        action="store_true",
        help="log every HTTP request to stderr",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    circuits_parser = subparsers.add_parser(
        "circuits",
        help=(
            "manage the benchmark corpus: bulk-ingest .pla directories by "
            "content hash, list/inspect registered circuits, regenerate "
            "the synthetic scale corpus"
        ),
    )
    circuits_sub = circuits_parser.add_subparsers(dest="action", required=True)

    ingest_parser = circuits_sub.add_parser(
        "ingest",
        help="register a .pla file or every .pla under a directory",
    )
    ingest_parser.add_argument("path", help="a .pla file or a directory")

    generate_parser = circuits_sub.add_parser(
        "generate",
        help=(
            "write the default synthetic scale corpus (random-PLA and "
            "layered families, hundreds of rows, seed-stable) into a "
            "directory, ready for `circuits ingest`"
        ),
    )
    generate_parser.add_argument("path", help="output directory")

    circuits_list_parser = circuits_sub.add_parser(
        "list", help="list registered corpus circuits with statistics"
    )
    circuits_list_parser.add_argument(
        "--json", action="store_true", help="print the index entries as JSON"
    )

    info_parser = circuits_sub.add_parser(
        "info", help="show one circuit's index entry (hash, source, stats)"
    )
    info_parser.add_argument("name", help="registered circuit name")
    info_parser.add_argument(
        "--json", action="store_true", help="print the entry as JSON"
    )

    for sub in (
        ingest_parser,
        generate_parser,
        circuits_list_parser,
        info_parser,
    ):
        sub.add_argument(
            "--corpus",
            metavar="DIR",
            default=None,
            help=(
                "corpus directory (default: $REPRO_CORPUS or .repro/corpus)"
            ),
        )
    circuits_parser.set_defaults(handler=_cmd_circuits)

    list_parser = subparsers.add_parser(
        "list", help="enumerate registered mappers, defect models or scenarios"
    )
    list_parser.add_argument(
        "what", choices=("mappers", "defect-models", "scenarios")
    )
    list_parser.set_defaults(handler=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
