"""The ``python -m repro`` command-line interface.

Every experiment in the repository — the paper's Table II, the
defect-rate sweep, the redundancy/yield study, Fig. 6, plus any
scenario or suite saved as JSON — runs from one command::

    python -m repro run table2 --samples 5 --workers 2 --jsonl out.jsonl
    python -m repro run sweep --engine reference   # object-path ground truth
    python -m repro run my_scenario.json --json
    python -m repro list mappers

``run`` streams results into a JSONL artifact store keyed by the content
hash of each scenario spec; an immediate re-run with the same spec is a
cache hit (no recomputation) and ``--force`` recomputes.  ``--out``
writes the rendered tables to a file (markdown when it ends in ``.md``),
``--json`` prints the full machine-readable result to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable
from pathlib import Path

from repro.api.artifacts import ArtifactStore
from repro.api.scenarios import Scenario, ScenarioSuite
from repro.exceptions import ExperimentError, ReproError

#: Default artifact-store location when ``--jsonl`` is not given.
DEFAULT_STORE = ".repro/artifacts.jsonl"

#: The experiment targets predeclared by the experiment modules.
BUILTIN_TARGETS = ("table2", "sweep", "redundancy", "figure6")


def builtin_suites() -> dict[str, Callable[..., ScenarioSuite]]:
    """``{target: paper_suite factory}`` for the predeclared experiments."""
    from repro.experiments import defect_sweep, figure6, redundancy, table2

    return {
        "table2": table2.paper_suite,
        "sweep": defect_sweep.paper_suite,
        "redundancy": redundancy.paper_suite,
        "figure6": figure6.paper_suite,
    }


def resolve_target(target: str) -> ScenarioSuite:
    """Resolve a ``run`` target into a suite.

    Accepted targets: a builtin experiment name (``table2``, ``sweep``,
    ``redundancy``, ``figure6``), a path to a scenario/suite JSON file,
    or the name of one scenario inside a builtin suite.
    """
    factories = builtin_suites()
    if target in factories:
        return factories[target]()
    path = Path(target)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise ExperimentError(f"no such scenario file: {target}")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ExperimentError(
                f"cannot read {target} as a scenario/suite JSON file: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"{target} must contain a JSON object, not "
                f"{type(payload).__name__}"
            )
        try:
            if "scenarios" in payload:
                return ScenarioSuite.from_dict(payload)
            if "source" in payload:
                scenario = Scenario.from_dict(payload)
                return ScenarioSuite(scenario.name, (scenario,))
        except (KeyError, TypeError) as error:
            raise ExperimentError(
                f"{target} is not a valid scenario/suite spec: {error!r}"
            ) from None
        raise ExperimentError(
            f"{target} is neither a scenario (needs a 'source' key) nor a "
            "suite (needs a 'scenarios' key)"
        )
    for factory in factories.values():
        suite = factory()
        for scenario in suite:
            if scenario.name == target:
                return ScenarioSuite(scenario.name, (scenario,))
    raise ExperimentError(
        f"unknown target {target!r}; expected one of {list(BUILTIN_TARGETS)}, "
        "a scenario name from `repro list scenarios`, or a path to a "
        "scenario/suite JSON file"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "mappers":
        from repro.api.registry import list_mappers

        for name in list_mappers():
            print(name)
    elif args.what == "defect-models":
        from repro.api.defect_models import list_defect_models

        for name in list_defect_models():
            print(name)
    else:
        for target, factory in builtin_suites().items():
            suite = factory()
            print(f"{target} ({len(suite)} scenarios)")
            for scenario in suite:
                print(f"  {scenario.describe()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.runner import run_suite

    suite = resolve_target(args.target)
    suite = suite.with_overrides(samples=args.samples, seed=args.seed)
    store = ArtifactStore(args.jsonl or DEFAULT_STORE)

    total = len(suite)
    done = 0

    def progress(scenario: Scenario, result) -> None:
        nonlocal done
        done += 1
        status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
        print(
            f"[{done}/{total}] {scenario.name}: {len(result.rows)} rows "
            f"({status}, workers={result.workers})",
            file=sys.stderr,
        )

    results = run_suite(
        suite,
        workers=args.workers,
        engine=args.engine,
        force=args.force,
        store=store,
        progress=progress,
    )

    if args.out:
        out_path = Path(args.out)
        style = "markdown" if out_path.suffix == ".md" else "monospace"
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(results.render(style=style) + "\n")
        print(f"wrote {out_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(results.to_dict(), indent=2, sort_keys=True))
    elif not args.out:
        print(results.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Declarative experiment runner for the memristive-crossbar "
            "defect-tolerance reproduction."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a builtin experiment, a scenario, or a JSON spec file"
    )
    run_parser.add_argument(
        "target",
        help=(
            "one of: "
            + ", ".join(BUILTIN_TARGETS)
            + "; a scenario name (see `repro list scenarios`); or a path to "
            "a scenario/suite JSON file"
        ),
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="batch-engine worker processes (default: auto; 1 = serial)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("vectorized", "packed", "reference"),
        default="vectorized",
        help=(
            "execution engine: the batched NumPy kernels (default; "
            "'packed' is an alias naming the bit-packed Boolean kernel "
            "the area protocol uses) or the per-sample object path; all "
            "choices produce identical counting statistics"
        ),
    )
    run_parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="override every scenario's Monte-Carlo sample count",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override every scenario's seed"
    )
    run_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help=f"JSONL artifact store (default: {DEFAULT_STORE})",
    )
    run_parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write rendered tables to a file (markdown when it ends in .md)",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result JSON to stdout",
    )
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even when the artifact store has a cached result",
    )
    run_parser.set_defaults(handler=_cmd_run)

    list_parser = subparsers.add_parser(
        "list", help="enumerate registered mappers, defect models or scenarios"
    )
    list_parser.add_argument(
        "what", choices=("mappers", "defect-models", "scenarios")
    )
    list_parser.set_defaults(handler=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
