"""Exception hierarchy shared by all ``repro`` subpackages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an application boundary while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class BooleanFunctionError(ReproError):
    """Invalid Boolean-function construction or manipulation."""


class PlaFormatError(BooleanFunctionError):
    """A PLA description could not be parsed or is internally inconsistent."""


class ExpressionError(BooleanFunctionError):
    """A textual Boolean expression could not be parsed."""


class SynthesisError(ReproError):
    """Multi-level NAND synthesis failed or produced an invalid network."""


class CrossbarError(ReproError):
    """Invalid crossbar construction, layout, or simulation request."""


class PhaseOrderError(CrossbarError):
    """The crossbar controller was driven through an illegal phase sequence."""


class DefectError(ReproError):
    """Invalid defect-map construction or defect injection request."""


class MappingError(ReproError):
    """Defect-tolerant mapping failed due to invalid inputs.

    Note that *not finding* a valid mapping is an expected outcome reported
    through :class:`repro.mapping.result.MappingResult`, not an exception;
    this error signals malformed inputs (e.g. mismatched matrix shapes).
    """


class BenchmarkError(ReproError):
    """Unknown benchmark circuit or inconsistent benchmark specification."""


class CorpusError(BenchmarkError):
    """A benchmark-corpus ingestion or lookup failed.

    Subclasses :class:`BenchmarkError` because corpus circuits resolve
    through the same registry paths as the paper's spec benchmarks;
    callers catching :class:`BenchmarkError` keep working.
    """


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class RegistryError(ExperimentError):
    """A mapper-registry lookup or registration failed.

    Subclasses :class:`ExperimentError` because registry misuse most
    often surfaces while configuring an experiment (an unknown algorithm
    name, a duplicate registration); existing callers catching
    :class:`ExperimentError` keep working.
    """
