"""repro — Logic Synthesis and Defect Tolerance for Memristive Crossbar Arrays.

A from-scratch Python reproduction of Tunali & Altun, DATE 2018.  The
package is organised by substrate:

* :mod:`repro.boolean` — cubes, covers, multi-output functions, PLA I/O,
  minimisation and complementation;
* :mod:`repro.synth` — NAND technology mapping (the ABC stand-in) used by
  the multi-level designs;
* :mod:`repro.crossbar` — memristor devices, crossbar arrays, two-level
  and multi-level designs, phase state machines and the behavioural
  simulator;
* :mod:`repro.defects` — the stuck-at defect model and defect injection;
* :mod:`repro.mapping` — the defect-tolerant mapping algorithms (hybrid
  HBA, exact EA) built on function/crossbar matrices and Munkres
  assignment;
* :mod:`repro.circuits` — benchmark circuits;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper plus the future-work extensions;
* :mod:`repro.api` — the unified public face: the fluent
  :class:`~repro.api.pipeline.Design` pipeline
  (``Design.from_benchmark("misex1").minimize().choose_dual()
  .map(defects=0.10).evaluate()``), the pluggable mapper registry
  (:func:`~repro.api.registry.register_mapper`) and the parallel batch
  engine (:class:`~repro.api.batch.BatchRunner`) behind
  ``run_mapping_monte_carlo(..., workers=N)``.

* :mod:`repro.analysis` — the adaptive yield-analysis layer: binomial
  confidence intervals, the CI-driven adaptive sampler
  (``Design.yield_analysis()``, ``Scenario(tolerance=...)``), yield
  curves/surfaces with threshold solving, and the spare-allocation
  optimizer behind ``python -m repro analyze``.

The most common entry points are re-exported here.
"""

from repro.analysis import (
    AdaptiveResult,
    BinomialInterval,
    YieldCurve,
    YieldSurface,
    compute_yield_curve,
    compute_yield_surface,
    optimize_spares,
    run_adaptive_monte_carlo,
    wilson_interval,
    yield_estimate,
)
from repro.api.artifacts import ArtifactStore
from repro.api.batch import BatchRunner
from repro.api.defect_models import (
    DefectModel,
    create_defect_model,
    list_defect_models,
    register_defect_model,
)
from repro.api.pipeline import Design, MappedDesign, MultiLevelMappedDesign
from repro.api.registry import (
    Mapper,
    MapperRegistry,
    create_mapper,
    list_mappers,
    register_mapper,
)
from repro.api.results import EvaluationResult
from repro.api.runner import ScenarioResult, SuiteResult, run_scenario, run_suite
from repro.api.scenarios import FunctionSource, Scenario, ScenarioSuite
from repro.api.seeding import derive_seed
from repro.boolean import (
    BooleanFunction,
    Cover,
    Cube,
    PackedCover,
    PackedTruthTable,
    minimize_cover,
    parse_pla,
    parse_sop,
)
from repro.circuits import get_benchmark, list_benchmarks
from repro.crossbar import (
    CrossbarArray,
    CrossbarController,
    MultiLevelDesign,
    TwoLevelDesign,
    choose_dual,
    evaluate_multi_level,
    evaluate_two_level,
    evaluate_two_level_batch,
    two_level_area_cost,
    two_level_area_cost_batch,
    verify_layout,
)
from repro.defects import DefectMap, DefectProfile, DefectType, inject_uniform
from repro.exceptions import ReproError
from repro.experiments import (
    run_defect_sweep,
    run_figure6,
    run_mapping_monte_carlo,
    run_redundancy_analysis,
    run_table1,
    run_table2,
)
from repro.mapping import (
    CrossbarMatrix,
    ExactMapper,
    FunctionMatrix,
    HybridMapper,
    MappingResult,
    map_with_dual_selection,
    validate_both,
)
from repro.multilevel import (
    MultiLevelMappingResult,
    MultiLevelStagePlan,
    map_multilevel,
    stage_plan_for,
)
from repro.synth import NandNetwork, best_network, technology_map

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "Design",
    "MappedDesign",
    "MultiLevelMappedDesign",
    "MultiLevelMappingResult",
    "MultiLevelStagePlan",
    "map_multilevel",
    "stage_plan_for",
    "EvaluationResult",
    "Mapper",
    "MapperRegistry",
    "register_mapper",
    "create_mapper",
    "list_mappers",
    "DefectModel",
    "register_defect_model",
    "create_defect_model",
    "list_defect_models",
    "FunctionSource",
    "Scenario",
    "ScenarioSuite",
    "ScenarioResult",
    "SuiteResult",
    "run_scenario",
    "run_suite",
    "ArtifactStore",
    "BatchRunner",
    "derive_seed",
    "Cube",
    "Cover",
    "PackedCover",
    "PackedTruthTable",
    "minimize_cover",
    "BooleanFunction",
    "parse_sop",
    "parse_pla",
    "TwoLevelDesign",
    "MultiLevelDesign",
    "CrossbarArray",
    "CrossbarController",
    "two_level_area_cost",
    "two_level_area_cost_batch",
    "choose_dual",
    "evaluate_two_level",
    "evaluate_two_level_batch",
    "evaluate_multi_level",
    "verify_layout",
    "NandNetwork",
    "technology_map",
    "best_network",
    "DefectType",
    "DefectProfile",
    "DefectMap",
    "inject_uniform",
    "FunctionMatrix",
    "CrossbarMatrix",
    "HybridMapper",
    "ExactMapper",
    "MappingResult",
    "map_with_dual_selection",
    "validate_both",
    "get_benchmark",
    "list_benchmarks",
    "run_figure6",
    "run_table1",
    "run_table2",
    "run_mapping_monte_carlo",
    "run_defect_sweep",
    "run_redundancy_analysis",
    "AdaptiveResult",
    "BinomialInterval",
    "YieldCurve",
    "YieldSurface",
    "compute_yield_curve",
    "compute_yield_surface",
    "optimize_spares",
    "run_adaptive_monte_carlo",
    "wilson_interval",
    "yield_estimate",
]
