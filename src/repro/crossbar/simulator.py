"""Behavioural simulation of programmed crossbar layouts.

The simulator evaluates a :class:`~repro.crossbar.layout.CrossbarLayout`
on an input assignment using the Snider Boolean logic semantics of the
paper:

* a **row** (NAND plane / gate row) evaluates to the NAND of the logic
  values presented on its active crosspoints;
* an **output column** evaluates to the NAND of the values of the rows
  connected to it (the AND-plane EVR step); when only the ``f̄`` column is
  driven, the INR step recovers ``f`` by inversion;
* multi-level **connection columns** carry the copied result of their
  gate row (the CR phase).

When a :class:`~repro.crossbar.array.CrossbarArray` is supplied the
simulation becomes defect-aware:

* a crosspoint required to be ACTIVE but stuck open always reads logic 1
  (its literal/connection silently disappears from the NAND);
* a stuck-closed crosspoint reads logic 0, forcing its row's NAND to 1,
  and poisons its entire column — every read from that column returns 0
  (the paper's §IV-A analysis of why neither line of a stuck-closed
  device is usable);
* a crosspoint the layout relies on being *disabled* (or simply unused)
  behaves correctly if stuck open — the defect is indistinguishable from
  a disabled device, which is exactly why stuck-open defects are
  tolerable by placement.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.crossbar.array import CrossbarArray
from repro.crossbar.device import DeviceMode
from repro.crossbar.layout import ColumnKind, CrossbarLayout, RowKind
from repro.exceptions import CrossbarError

#: Engines the batch-capable entry points accept.
SIMULATOR_ENGINES = ("auto", "batch", "object")


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    ``outputs`` holds one bit per output index (``f`` values);
    ``complemented_outputs`` the corresponding ``f̄`` values.
    """

    outputs: list[int]
    complemented_outputs: list[int]
    row_values: dict[int, int] = field(default_factory=dict)
    connection_values: dict[int, int] = field(default_factory=dict)
    poisoned_rows: set[int] = field(default_factory=set)
    poisoned_columns: set[int] = field(default_factory=set)

    def output_bits(self) -> list[bool]:
        """Outputs as booleans."""
        return [bool(v) for v in self.outputs]


def _check_array(layout: CrossbarLayout, array: CrossbarArray | None) -> None:
    if array is None:
        return
    if array.rows < layout.rows or array.columns < layout.columns:
        raise CrossbarError(
            f"array {array.rows}x{array.columns} is smaller than layout "
            f"{layout.rows}x{layout.columns}"
        )


def _poisoned_lines(
    layout: CrossbarLayout, array: CrossbarArray | None
) -> tuple[set[int], set[int]]:
    """Rows and columns made unusable by stuck-closed devices."""
    poisoned_rows: set[int] = set()
    poisoned_columns: set[int] = set()
    if array is None:
        return poisoned_rows, poisoned_columns
    for row, column, mode in array.defect_positions():
        if mode == DeviceMode.STUCK_CLOSED:
            if row < layout.rows:
                poisoned_rows.add(row)
            if column < layout.columns:
                poisoned_columns.add(column)
    return poisoned_rows, poisoned_columns


def _crosspoint_reads_value(
    layout: CrossbarLayout,
    array: CrossbarArray | None,
    row: int,
    column: int,
    nominal_value: int,
    poisoned_columns: set[int],
) -> int:
    """The logic value a row actually senses through one active crosspoint."""
    if column in poisoned_columns:
        return 0
    if array is None:
        return nominal_value
    mode = array.mode(row, column)
    if mode == DeviceMode.STUCK_OPEN:
        return 1
    if mode == DeviceMode.STUCK_CLOSED:
        return 0
    return nominal_value


def _nand(values: list[int]) -> int:
    """NAND of a list of bits (NAND of nothing is defined as 1)."""
    if not values:
        return 1
    return 0 if all(values) else 1


def _input_column_value(
    role, assignment: Sequence[int]
) -> int:
    value = 1 if assignment[role.index] else 0
    return value if role.polarity else 1 - value


def evaluate_two_level(
    layout: CrossbarLayout,
    assignment: Sequence[int] | Sequence[bool],
    *,
    array: CrossbarArray | None = None,
) -> SimulationResult:
    """Evaluate a two-level layout (optionally on a defective array)."""
    _check_array(layout, array)
    num_inputs = len(layout.columns_of_kind(ColumnKind.INPUT)) // 2
    if len(assignment) != num_inputs:
        raise CrossbarError(
            f"assignment has {len(assignment)} bits, layout expects {num_inputs}"
        )
    poisoned_rows, poisoned_columns = _poisoned_lines(layout, array)

    # EVM: every product row computes the NAND of its input-latch devices.
    row_values: dict[int, int] = {}
    for row in range(layout.rows):
        role = layout.row_roles[row]
        if role.kind not in (RowKind.PRODUCT, RowKind.GATE):
            continue
        sensed: list[int] = []
        for column in layout.active_in_row(row):
            column_role = layout.column_roles[column]
            if column_role.kind != ColumnKind.INPUT:
                continue
            nominal = _input_column_value(column_role, assignment)
            sensed.append(
                _crosspoint_reads_value(
                    layout, array, row, column, nominal, poisoned_columns
                )
            )
        value = _nand(sensed)
        if row in poisoned_rows:
            value = 1
        row_values[row] = value

    # EVR + INR: output columns take the NAND of their connected rows.
    outputs, complements = _evaluate_output_columns(
        layout, array, row_values, poisoned_rows, poisoned_columns
    )
    return SimulationResult(
        outputs=outputs,
        complemented_outputs=complements,
        row_values=row_values,
        poisoned_rows=poisoned_rows,
        poisoned_columns=poisoned_columns,
    )


def evaluate_multi_level(
    layout: CrossbarLayout,
    assignment: Sequence[int] | Sequence[bool],
    *,
    array: CrossbarArray | None = None,
) -> SimulationResult:
    """Evaluate a multi-level layout gate-by-gate (EVM/CR loop)."""
    _check_array(layout, array)
    num_inputs = len(layout.columns_of_kind(ColumnKind.INPUT)) // 2
    if len(assignment) != num_inputs:
        raise CrossbarError(
            f"assignment has {len(assignment)} bits, layout expects {num_inputs}"
        )
    poisoned_rows, poisoned_columns = _poisoned_lines(layout, array)

    connection_column_of_gate = {
        layout.column_roles[column].index: column
        for column in layout.columns_of_kind(ColumnKind.CONNECTION)
    }
    connection_values: dict[int, int] = {}
    row_values: dict[int, int] = {}

    gate_rows = [
        row
        for row in range(layout.rows)
        if layout.row_roles[row].kind == RowKind.GATE
    ]
    for row in gate_rows:
        gate_id = layout.row_roles[row].index
        own_connection = connection_column_of_gate.get(gate_id)
        sensed: list[int] = []
        for column in layout.active_in_row(row):
            column_role = layout.column_roles[column]
            if column_role.kind == ColumnKind.OUTPUT:
                continue
            if column == own_connection:
                continue  # The copy target, not a fan-in.
            if column_role.kind == ColumnKind.INPUT:
                nominal = _input_column_value(column_role, assignment)
            else:  # Connection column of an earlier gate.
                nominal = connection_values.get(column_role.index, 1)
            sensed.append(
                _crosspoint_reads_value(
                    layout, array, row, column, nominal, poisoned_columns
                )
            )
        value = _nand(sensed)
        if row in poisoned_rows:
            value = 1
        row_values[row] = value
        # CR phase: copy the result into the gate's own connection column.
        if own_connection is not None:
            copied = _crosspoint_reads_value(
                layout, array, row, own_connection, value, poisoned_columns
            )
            if own_connection in poisoned_columns:
                copied = 0
            connection_values[gate_id] = copied

    outputs, complements = _evaluate_output_columns(
        layout, array, row_values, poisoned_rows, poisoned_columns
    )
    return SimulationResult(
        outputs=outputs,
        complemented_outputs=complements,
        row_values=row_values,
        connection_values=connection_values,
        poisoned_rows=poisoned_rows,
        poisoned_columns=poisoned_columns,
    )


def _evaluate_output_columns(
    layout: CrossbarLayout,
    array: CrossbarArray | None,
    row_values: dict[int, int],
    poisoned_rows: set[int],
    poisoned_columns: set[int],
) -> tuple[list[int], list[int]]:
    output_indices = sorted(
        {
            layout.column_roles[column].index
            for column in layout.columns_of_kind(ColumnKind.OUTPUT)
        }
    )
    outputs: list[int] = []
    complements: list[int] = []
    for output in output_indices:
        positive_column = layout.column_index(ColumnKind.OUTPUT, output, True)
        negative_column = layout.column_index(ColumnKind.OUTPUT, output, False)
        positive_drivers = [
            row
            for row in layout.active_in_column(positive_column)
            if row in row_values
        ]
        negative_drivers = [
            row
            for row in layout.active_in_column(negative_column)
            if row in row_values
        ]
        if positive_drivers:
            sensed = [
                _crosspoint_reads_value(
                    layout,
                    array,
                    row,
                    positive_column,
                    row_values[row],
                    poisoned_columns,
                )
                for row in positive_drivers
            ]
            value = _nand(sensed)
            if positive_column in poisoned_columns:
                value = 0
        elif negative_drivers:
            sensed = [
                _crosspoint_reads_value(
                    layout,
                    array,
                    row,
                    negative_column,
                    row_values[row],
                    poisoned_columns,
                )
                for row in negative_drivers
            ]
            complement_value = _nand(sensed)
            if negative_column in poisoned_columns:
                complement_value = 0
            value = 1 - complement_value
        else:
            value = 0
        outputs.append(value)
        complements.append(1 - value)
    return outputs, complements


# ----------------------------------------------------------------------
# Batched two-level evaluation: the whole assignment batch in one
# vectorized pass over an (assignments × rows × columns) view.
# ----------------------------------------------------------------------
def evaluate_two_level_batch(
    layout: CrossbarLayout,
    assignments,
    *,
    array: CrossbarArray | None = None,
) -> np.ndarray:
    """Evaluate a two-level layout on a whole batch of assignments.

    ``assignments`` is an ``(A, num_inputs)`` array-like of bits; the
    return value is the ``(A, num_outputs)`` uint8 matrix of ``f``
    values, row-for-row identical to calling :func:`evaluate_two_level`
    on each assignment (the differential tests pin the two together).
    Defect awareness matches the scalar path exactly: stuck-open devices
    read 1, stuck-closed devices read 0 and poison their whole row and
    column, and a poisoned output column is forced to 0.
    """
    _check_array(layout, array)
    batch = np.asarray(assignments, dtype=np.uint8)
    if batch.ndim == 1:
        batch = batch[None, :]
    num_inputs = len(layout.columns_of_kind(ColumnKind.INPUT)) // 2
    if batch.shape[1] != num_inputs:
        raise CrossbarError(
            f"assignments have {batch.shape[1]} bits, layout expects "
            f"{num_inputs}"
        )
    num_rows, num_columns = layout.rows, layout.columns
    num_samples = batch.shape[0]

    active = np.zeros((num_rows, num_columns), dtype=bool)
    if layout.active_crosspoints:
        rows, columns = zip(*layout.active_crosspoints)
        active[list(rows), list(columns)] = True

    stuck_open = np.zeros((num_rows, num_columns), dtype=bool)
    stuck_closed = np.zeros((num_rows, num_columns), dtype=bool)
    poisoned_column = np.zeros(num_columns, dtype=bool)
    poisoned_row = np.zeros(num_rows, dtype=bool)
    if array is not None:
        for row, column, mode in array.defect_positions():
            if mode == DeviceMode.STUCK_CLOSED:
                if row < num_rows:
                    poisoned_row[row] = True
                if column < num_columns:
                    poisoned_column[column] = True
            if row < num_rows and column < num_columns:
                if mode == DeviceMode.STUCK_OPEN:
                    stuck_open[row, column] = True
                elif mode == DeviceMode.STUCK_CLOSED:
                    stuck_closed[row, column] = True

    # Nominal input-column values for the whole batch.
    input_columns = layout.columns_of_kind(ColumnKind.INPUT)
    column_values = np.zeros((num_samples, num_columns), dtype=np.uint8)
    for column in input_columns:
        role = layout.column_roles[column]
        value = batch[:, role.index]
        column_values[:, column] = value if role.polarity else 1 - value

    # EVM: every product/gate row NANDs its active input-latch devices.
    is_input_column = np.zeros(num_columns, dtype=bool)
    is_input_column[input_columns] = True
    sensed = active & is_input_column[None, :]
    static_zero = sensed & (poisoned_column[None, :] | stuck_closed)
    nominal = sensed & ~static_zero & ~stuck_open
    has_device = sensed.any(axis=1)
    row_forced_one = static_zero.any(axis=1)
    nominal_counts = nominal.sum(axis=1, dtype=np.int64)
    ones_read = column_values.astype(np.int64) @ nominal.T.astype(np.int64)
    all_ones = ones_read == nominal_counts[None, :]
    row_values = np.where(
        ~has_device[None, :] | row_forced_one[None, :] | poisoned_row[None, :],
        np.uint8(1),
        (1 - all_ones).astype(np.uint8),
    )

    is_pg_row = np.array(
        [role.kind in (RowKind.PRODUCT, RowKind.GATE) for role in layout.row_roles]
    )

    # EVR + INR: output columns NAND their connected product rows.
    output_indices = sorted(
        {
            layout.column_roles[column].index
            for column in layout.columns_of_kind(ColumnKind.OUTPUT)
        }
    )
    outputs = np.zeros((num_samples, len(output_indices)), dtype=np.uint8)

    def column_nand(column: int) -> np.ndarray | None:
        """Batched NAND of the rows driving one output column."""
        drivers = [
            row for row in layout.active_in_column(column) if is_pg_row[row]
        ]
        if not drivers:
            return None
        drivers = np.array(drivers)
        driver_zero = poisoned_column[column] | stuck_closed[drivers, column]
        driver_nominal = ~driver_zero & ~stuck_open[drivers, column]
        all_one = (row_values[:, drivers[driver_nominal]] == 1).all(axis=1)
        if driver_zero.any():
            all_one[:] = False
        value = (1 - all_one).astype(np.uint8)
        if poisoned_column[column]:
            value[:] = 0
        return value

    for position, output in enumerate(output_indices):
        positive_column = layout.column_index(ColumnKind.OUTPUT, output, True)
        negative_column = layout.column_index(ColumnKind.OUTPUT, output, False)
        positive = column_nand(positive_column)
        if positive is not None:
            outputs[:, position] = positive
            continue
        complement = column_nand(negative_column)
        if complement is not None:
            outputs[:, position] = 1 - complement
        # else: no drivers at all — the column reads 0, already the default.
    return outputs


def verify_layout(
    layout: CrossbarLayout,
    reference,
    *,
    multi_level: bool = False,
    array: CrossbarArray | None = None,
    exhaustive_limit: int = 10,
    samples: int = 256,
    engine: str = "auto",
) -> bool:
    """Check a layout against a reference Boolean function.

    ``reference`` is a :class:`~repro.boolean.function.BooleanFunction`;
    evaluation is exhaustive for small input counts and sampled otherwise.
    ``engine`` selects the batched tensor evaluation (two-level layouts
    only; the default) or the scalar object walk — both answer
    identically.
    """
    from repro.boolean.truth_table import (
        verification_assignment_matrix,
        verification_assignments,
    )

    if engine not in SIMULATOR_ENGINES:
        raise CrossbarError(
            f"unknown simulator engine {engine!r}; expected one of "
            f"{list(SIMULATOR_ENGINES)}"
        )
    if engine == "batch" and multi_level:
        raise CrossbarError(
            "engine='batch' does not support multi-level layouts; use "
            "engine='auto' (falls back to the object walk) or 'object'"
        )
    if engine != "object" and not multi_level:
        batch = verification_assignment_matrix(
            reference.num_inputs,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
        )
        from repro.boolean.packed import evaluate_function_batch

        simulated = evaluate_two_level_batch(layout, batch, array=array)
        expected = evaluate_function_batch(reference, batch)
        return bool((simulated == expected).all())

    evaluate = evaluate_multi_level if multi_level else evaluate_two_level
    for assignment in verification_assignments(
        reference.num_inputs, exhaustive_limit=exhaustive_limit, samples=samples
    ):
        result = evaluate(layout, assignment, array=array)
        expected = [1 if v else 0 for v in reference.evaluate(assignment)]
        if result.outputs != expected:
            return False
    return True
