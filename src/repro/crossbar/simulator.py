"""Behavioural simulation of programmed crossbar layouts.

The simulator evaluates a :class:`~repro.crossbar.layout.CrossbarLayout`
on an input assignment using the Snider Boolean logic semantics of the
paper:

* a **row** (NAND plane / gate row) evaluates to the NAND of the logic
  values presented on its active crosspoints;
* an **output column** evaluates to the NAND of the values of the rows
  connected to it (the AND-plane EVR step); when only the ``f̄`` column is
  driven, the INR step recovers ``f`` by inversion;
* multi-level **connection columns** carry the copied result of their
  gate row (the CR phase).

When a :class:`~repro.crossbar.array.CrossbarArray` is supplied the
simulation becomes defect-aware:

* a crosspoint required to be ACTIVE but stuck open always reads logic 1
  (its literal/connection silently disappears from the NAND);
* a stuck-closed crosspoint reads logic 0, forcing its row's NAND to 1,
  and poisons its entire column — every read from that column returns 0
  (the paper's §IV-A analysis of why neither line of a stuck-closed
  device is usable);
* a crosspoint the layout relies on being *disabled* (or simply unused)
  behaves correctly if stuck open — the defect is indistinguishable from
  a disabled device, which is exactly why stuck-open defects are
  tolerable by placement.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.crossbar.array import CrossbarArray
from repro.crossbar.device import DeviceMode
from repro.crossbar.layout import ColumnKind, CrossbarLayout, RowKind
from repro.exceptions import CrossbarError


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    ``outputs`` holds one bit per output index (``f`` values);
    ``complemented_outputs`` the corresponding ``f̄`` values.
    """

    outputs: list[int]
    complemented_outputs: list[int]
    row_values: dict[int, int] = field(default_factory=dict)
    connection_values: dict[int, int] = field(default_factory=dict)
    poisoned_rows: set[int] = field(default_factory=set)
    poisoned_columns: set[int] = field(default_factory=set)

    def output_bits(self) -> list[bool]:
        """Outputs as booleans."""
        return [bool(v) for v in self.outputs]


def _check_array(layout: CrossbarLayout, array: CrossbarArray | None) -> None:
    if array is None:
        return
    if array.rows < layout.rows or array.columns < layout.columns:
        raise CrossbarError(
            f"array {array.rows}x{array.columns} is smaller than layout "
            f"{layout.rows}x{layout.columns}"
        )


def _poisoned_lines(
    layout: CrossbarLayout, array: CrossbarArray | None
) -> tuple[set[int], set[int]]:
    """Rows and columns made unusable by stuck-closed devices."""
    poisoned_rows: set[int] = set()
    poisoned_columns: set[int] = set()
    if array is None:
        return poisoned_rows, poisoned_columns
    for row, column, mode in array.defect_positions():
        if mode == DeviceMode.STUCK_CLOSED:
            if row < layout.rows:
                poisoned_rows.add(row)
            if column < layout.columns:
                poisoned_columns.add(column)
    return poisoned_rows, poisoned_columns


def _crosspoint_reads_value(
    layout: CrossbarLayout,
    array: CrossbarArray | None,
    row: int,
    column: int,
    nominal_value: int,
    poisoned_columns: set[int],
) -> int:
    """The logic value a row actually senses through one active crosspoint."""
    if column in poisoned_columns:
        return 0
    if array is None:
        return nominal_value
    mode = array.mode(row, column)
    if mode == DeviceMode.STUCK_OPEN:
        return 1
    if mode == DeviceMode.STUCK_CLOSED:
        return 0
    return nominal_value


def _nand(values: list[int]) -> int:
    """NAND of a list of bits (NAND of nothing is defined as 1)."""
    if not values:
        return 1
    return 0 if all(values) else 1


def _input_column_value(
    role, assignment: Sequence[int]
) -> int:
    value = 1 if assignment[role.index] else 0
    return value if role.polarity else 1 - value


def evaluate_two_level(
    layout: CrossbarLayout,
    assignment: Sequence[int] | Sequence[bool],
    *,
    array: CrossbarArray | None = None,
) -> SimulationResult:
    """Evaluate a two-level layout (optionally on a defective array)."""
    _check_array(layout, array)
    num_inputs = len(layout.columns_of_kind(ColumnKind.INPUT)) // 2
    if len(assignment) != num_inputs:
        raise CrossbarError(
            f"assignment has {len(assignment)} bits, layout expects {num_inputs}"
        )
    poisoned_rows, poisoned_columns = _poisoned_lines(layout, array)

    # EVM: every product row computes the NAND of its input-latch devices.
    row_values: dict[int, int] = {}
    for row in range(layout.rows):
        role = layout.row_roles[row]
        if role.kind not in (RowKind.PRODUCT, RowKind.GATE):
            continue
        sensed: list[int] = []
        for column in layout.active_in_row(row):
            column_role = layout.column_roles[column]
            if column_role.kind != ColumnKind.INPUT:
                continue
            nominal = _input_column_value(column_role, assignment)
            sensed.append(
                _crosspoint_reads_value(
                    layout, array, row, column, nominal, poisoned_columns
                )
            )
        value = _nand(sensed)
        if row in poisoned_rows:
            value = 1
        row_values[row] = value

    # EVR + INR: output columns take the NAND of their connected rows.
    outputs, complements = _evaluate_output_columns(
        layout, array, row_values, poisoned_rows, poisoned_columns
    )
    return SimulationResult(
        outputs=outputs,
        complemented_outputs=complements,
        row_values=row_values,
        poisoned_rows=poisoned_rows,
        poisoned_columns=poisoned_columns,
    )


def evaluate_multi_level(
    layout: CrossbarLayout,
    assignment: Sequence[int] | Sequence[bool],
    *,
    array: CrossbarArray | None = None,
) -> SimulationResult:
    """Evaluate a multi-level layout gate-by-gate (EVM/CR loop)."""
    _check_array(layout, array)
    num_inputs = len(layout.columns_of_kind(ColumnKind.INPUT)) // 2
    if len(assignment) != num_inputs:
        raise CrossbarError(
            f"assignment has {len(assignment)} bits, layout expects {num_inputs}"
        )
    poisoned_rows, poisoned_columns = _poisoned_lines(layout, array)

    connection_column_of_gate = {
        layout.column_roles[column].index: column
        for column in layout.columns_of_kind(ColumnKind.CONNECTION)
    }
    connection_values: dict[int, int] = {}
    row_values: dict[int, int] = {}

    gate_rows = [
        row
        for row in range(layout.rows)
        if layout.row_roles[row].kind == RowKind.GATE
    ]
    for row in gate_rows:
        gate_id = layout.row_roles[row].index
        own_connection = connection_column_of_gate.get(gate_id)
        sensed: list[int] = []
        for column in layout.active_in_row(row):
            column_role = layout.column_roles[column]
            if column_role.kind == ColumnKind.OUTPUT:
                continue
            if column == own_connection:
                continue  # The copy target, not a fan-in.
            if column_role.kind == ColumnKind.INPUT:
                nominal = _input_column_value(column_role, assignment)
            else:  # Connection column of an earlier gate.
                nominal = connection_values.get(column_role.index, 1)
            sensed.append(
                _crosspoint_reads_value(
                    layout, array, row, column, nominal, poisoned_columns
                )
            )
        value = _nand(sensed)
        if row in poisoned_rows:
            value = 1
        row_values[row] = value
        # CR phase: copy the result into the gate's own connection column.
        if own_connection is not None:
            copied = _crosspoint_reads_value(
                layout, array, row, own_connection, value, poisoned_columns
            )
            if own_connection in poisoned_columns:
                copied = 0
            connection_values[gate_id] = copied

    outputs, complements = _evaluate_output_columns(
        layout, array, row_values, poisoned_rows, poisoned_columns
    )
    return SimulationResult(
        outputs=outputs,
        complemented_outputs=complements,
        row_values=row_values,
        connection_values=connection_values,
        poisoned_rows=poisoned_rows,
        poisoned_columns=poisoned_columns,
    )


def _evaluate_output_columns(
    layout: CrossbarLayout,
    array: CrossbarArray | None,
    row_values: dict[int, int],
    poisoned_rows: set[int],
    poisoned_columns: set[int],
) -> tuple[list[int], list[int]]:
    output_indices = sorted(
        {
            layout.column_roles[column].index
            for column in layout.columns_of_kind(ColumnKind.OUTPUT)
        }
    )
    outputs: list[int] = []
    complements: list[int] = []
    for output in output_indices:
        positive_column = layout.column_index(ColumnKind.OUTPUT, output, True)
        negative_column = layout.column_index(ColumnKind.OUTPUT, output, False)
        positive_drivers = [
            row
            for row in layout.active_in_column(positive_column)
            if row in row_values
        ]
        negative_drivers = [
            row
            for row in layout.active_in_column(negative_column)
            if row in row_values
        ]
        if positive_drivers:
            sensed = [
                _crosspoint_reads_value(
                    layout,
                    array,
                    row,
                    positive_column,
                    row_values[row],
                    poisoned_columns,
                )
                for row in positive_drivers
            ]
            value = _nand(sensed)
            if positive_column in poisoned_columns:
                value = 0
        elif negative_drivers:
            sensed = [
                _crosspoint_reads_value(
                    layout,
                    array,
                    row,
                    negative_column,
                    row_values[row],
                    poisoned_columns,
                )
                for row in negative_drivers
            ]
            complement_value = _nand(sensed)
            if negative_column in poisoned_columns:
                complement_value = 0
            value = 1 - complement_value
        else:
            value = 0
        outputs.append(value)
        complements.append(1 - value)
    return outputs, complements


def verify_layout(
    layout: CrossbarLayout,
    reference,
    *,
    multi_level: bool = False,
    array: CrossbarArray | None = None,
    exhaustive_limit: int = 10,
    samples: int = 256,
) -> bool:
    """Check a layout against a reference Boolean function.

    ``reference`` is a :class:`~repro.boolean.function.BooleanFunction`;
    evaluation is exhaustive for small input counts and sampled otherwise.
    """
    from repro.boolean.truth_table import verification_assignments

    evaluate = evaluate_multi_level if multi_level else evaluate_two_level
    for assignment in verification_assignments(
        reference.num_inputs, exhaustive_limit=exhaustive_limit, samples=samples
    ):
        result = evaluate(layout, assignment, array=array)
        expected = [1 if v else 0 for v in reference.evaluate(assignment)]
        if result.outputs != expected:
            return False
    return True
