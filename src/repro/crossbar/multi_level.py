"""Multi-level crossbar designs (paper §III, Fig. 4/5).

A :class:`MultiLevelDesign` places a fan-in-bounded NAND network on a
single crossbar: one horizontal line per NAND gate (evaluated one at a
time), *multi-level connection* columns in place of the AND plane, and
the usual input/output latch columns.  The extra CR phase of the
multi-level state machine copies each gate's result into its connection
column so later gate rows can consume it.

Layout conventions (kept consistent with the closed-form accounting in
:mod:`repro.synth.area`; a cross-check is part of the test-suite):

* gate rows appear in network (topological = evaluation) order, followed
  by one output-latch row per output;
* a gate row has one active device per fan-in — in the input latch for
  literal fan-ins, in the source gate's connection column for gate
  fan-ins — plus one device in its *own* connection column when its
  result must be copied for later gates;
* the gate driving output ``o`` carries one device in the output column
  pair: in the ``f`` column when the output takes the gate's value
  inverted (a NAND row naturally produces the complement under the
  column-NAND evaluation), in the ``f̄`` column otherwise;
* every output-latch row carries the ``f``/``f̄`` device pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crossbar.layout import (
    ColumnKind,
    ColumnRole,
    CrossbarLayout,
    RowKind,
    RowRole,
)
from repro.crossbar.states import Phase, multi_level_sequence
from repro.exceptions import CrossbarError
from repro.synth.area import MultiLevelAreaReport, multilevel_area_report
from repro.synth.network import NandNetwork
from repro.synth.signals import GateRef, Literal


@dataclass(frozen=True)
class OutputTap:
    """Where an output picks up its value on the multi-level crossbar."""

    output_index: int
    driver_row: int | None
    driver_literal: Literal | None
    inverted: bool


class MultiLevelDesign:
    """A NAND network mapped onto the multi-level crossbar architecture."""

    def __init__(self, network: NandNetwork):
        if network.num_outputs == 0:
            raise CrossbarError("the network declares no outputs")
        self._network = network
        self._layout, self._taps = self._build_layout()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_layout(self) -> tuple[CrossbarLayout, list[OutputTap]]:
        network = self._network
        num_inputs = network.num_inputs
        num_outputs = network.num_outputs
        gates = network.gates
        internal = sorted(network.internal_gate_ids())

        column_roles: list[ColumnRole] = []
        column_roles.extend(
            ColumnRole(ColumnKind.INPUT, i, True) for i in range(num_inputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.INPUT, i, False) for i in range(num_inputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.CONNECTION, gate_id) for gate_id in internal
        )
        column_roles.extend(
            ColumnRole(ColumnKind.OUTPUT, o, True) for o in range(num_outputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.OUTPUT, o, False) for o in range(num_outputs)
        )

        positive_input_column = {i: i for i in range(num_inputs)}
        negative_input_column = {i: num_inputs + i for i in range(num_inputs)}
        connection_column = {
            gate_id: 2 * num_inputs + slot for slot, gate_id in enumerate(internal)
        }
        output_base = 2 * num_inputs + len(internal)
        positive_output_column = {o: output_base + o for o in range(num_outputs)}
        negative_output_column = {
            o: output_base + num_outputs + o for o in range(num_outputs)
        }

        row_roles: list[RowRole] = []
        gate_row = {}
        for position, gate in enumerate(gates):
            gate_row[gate.gate_id] = position
            row_roles.append(RowRole(RowKind.GATE, gate.gate_id))
        for output in range(num_outputs):
            row_roles.append(RowRole(RowKind.OUTPUT, output))

        active: set[tuple[int, int]] = set()
        for gate in gates:
            row = gate_row[gate.gate_id]
            for signal in gate.fanins:
                if isinstance(signal, Literal):
                    column = (
                        positive_input_column[signal.input_index]
                        if signal.polarity
                        else negative_input_column[signal.input_index]
                    )
                elif isinstance(signal, GateRef):
                    if signal.gate_id not in connection_column:
                        raise CrossbarError(
                            f"gate {gate.gate_id} consumes gate {signal.gate_id} "
                            "which has no connection column"
                        )
                    column = connection_column[signal.gate_id]
                else:
                    raise CrossbarError(f"unknown signal type {type(signal)!r}")
                active.add((row, column))
            if gate.gate_id in connection_column:
                active.add((row, connection_column[gate.gate_id]))

        taps: list[OutputTap] = []
        for output_index, output in enumerate(network.outputs):
            output_row = len(gates) + output_index
            active.add((output_row, positive_output_column[output_index]))
            active.add((output_row, negative_output_column[output_index]))
            if isinstance(output.driver, GateRef):
                driver_row = gate_row[output.driver.gate_id]
                # Under column-NAND evaluation a single connected row yields
                # the complement of the row value, so the driver device goes
                # in the f column when the output is the inverted gate value
                # and in the f̄ column otherwise.
                column = (
                    positive_output_column[output_index]
                    if output.invert
                    else negative_output_column[output_index]
                )
                active.add((driver_row, column))
                taps.append(
                    OutputTap(output_index, driver_row, None, output.invert)
                )
            elif isinstance(output.driver, Literal):
                literal = output.driver
                column = (
                    positive_input_column[literal.input_index]
                    if literal.polarity
                    else negative_input_column[literal.input_index]
                )
                active.add((output_row, column))
                taps.append(OutputTap(output_index, None, literal, output.invert))
            else:
                raise CrossbarError(
                    f"unsupported output driver {type(output.driver)!r}"
                )

        layout = CrossbarLayout(
            row_roles, column_roles, active, name=network.name or "multi-level"
        )
        return layout, taps

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> NandNetwork:
        """The source NAND network."""
        return self._network

    @property
    def layout(self) -> CrossbarLayout:
        """The crossbar programming plan."""
        return self._layout

    @property
    def output_taps(self) -> tuple[OutputTap, ...]:
        """Per-output tap descriptors (driver row / literal and polarity)."""
        return tuple(self._taps)

    @property
    def area(self) -> int:
        """Crossbar area (rows × columns)."""
        return self._layout.area

    @property
    def inclusion_ratio(self) -> float:
        """Used memristors / area."""
        return self._layout.inclusion_ratio

    def area_report(self) -> MultiLevelAreaReport:
        """Closed-form area breakdown (matches the layout dimensions)."""
        return multilevel_area_report(self._network)

    def phase_sequence(self) -> tuple[Phase, ...]:
        """The multi-level computation's phase order for this design."""
        return multi_level_sequence(max(1, self._network.gate_count()))

    def computation_cycles(self) -> int:
        """Number of controller phases needed for one evaluation."""
        return len(self.phase_sequence())

    def __repr__(self) -> str:
        return (
            f"MultiLevelDesign({self._network.name or '<anonymous>'}: "
            f"{self._layout.rows}x{self._layout.columns}, area={self.area}, "
            f"gates={self._network.gate_count()}, "
            f"levels={self._network.depth()})"
        )
