"""The physical crossbar array: a grid of memristor devices.

The array knows nothing about logic functions — it is the fabric the
designs are programmed onto.  It supports the operations the CMOS
controller needs (initialising, programming device modes, writing and
reading logic values) plus defect bookkeeping: fabrication defects are
attached to the array, not to the design, so the same defective array can
be reused across many mapping attempts in the Monte-Carlo experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.crossbar.device import (
    DeviceMode,
    DeviceParameters,
    Memristor,
)
from repro.exceptions import CrossbarError


class CrossbarArray:
    """A ``rows × columns`` grid of memristor crosspoints."""

    def __init__(
        self,
        rows: int,
        columns: int,
        *,
        parameters: DeviceParameters | None = None,
    ):
        if rows <= 0 or columns <= 0:
            raise CrossbarError("crossbar dimensions must be positive")
        self._rows = int(rows)
        self._columns = int(columns)
        self._parameters = parameters or DeviceParameters()
        self._devices = [
            [Memristor(self._parameters) for _ in range(self._columns)]
            for _ in range(self._rows)
        ]

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of horizontal lines."""
        return self._rows

    @property
    def columns(self) -> int:
        """Number of vertical lines."""
        return self._columns

    @property
    def area(self) -> int:
        """Number of crosspoints (the paper's area-cost unit)."""
        return self._rows * self._columns

    @property
    def parameters(self) -> DeviceParameters:
        """Electrical parameters shared by all devices."""
        return self._parameters

    def _check_position(self, row: int, column: int) -> None:
        if not (0 <= row < self._rows and 0 <= column < self._columns):
            raise CrossbarError(
                f"crosspoint ({row}, {column}) outside a "
                f"{self._rows}x{self._columns} array"
            )

    def device(self, row: int, column: int) -> Memristor:
        """The memristor at a crosspoint."""
        self._check_position(row, column)
        return self._devices[row][column]

    def positions(self) -> Iterator[tuple[int, int]]:
        """Iterate all crosspoint coordinates row-major."""
        for row in range(self._rows):
            for column in range(self._columns):
                yield row, column

    # ------------------------------------------------------------------
    # Programming and defects
    # ------------------------------------------------------------------
    def set_mode(self, row: int, column: int, mode: DeviceMode) -> None:
        """Program (or mark defective) a single crosspoint."""
        self.device(row, column).mode = mode

    def mode(self, row: int, column: int) -> DeviceMode:
        """Programming/defect mode of a crosspoint."""
        return self.device(row, column).mode

    def inject_defect(self, row: int, column: int, mode: DeviceMode) -> None:
        """Attach a fabrication defect to a crosspoint.

        Overwrites any previous programming; injecting on top of another
        defect replaces it (useful for constructing worst-case patterns in
        tests).
        """
        if not mode.is_defective:
            raise CrossbarError(f"{mode} is not a defect mode")
        self._check_position(row, column)
        self._devices[row][column] = Memristor(self._parameters, mode=mode)

    def defect_positions(self) -> list[tuple[int, int, DeviceMode]]:
        """All defective crosspoints as ``(row, column, mode)``."""
        return [
            (row, column, self._devices[row][column].mode)
            for row, column in self.positions()
            if self._devices[row][column].mode.is_defective
        ]

    def functional_positions(self) -> list[tuple[int, int]]:
        """All non-defective crosspoints."""
        return [
            (row, column)
            for row, column in self.positions()
            if not self._devices[row][column].mode.is_defective
        ]

    def defect_count(self) -> int:
        """Number of defective crosspoints."""
        return len(self.defect_positions())

    def program_active(self, positions: Iterable[tuple[int, int]]) -> None:
        """Mark the given crosspoints ACTIVE and all others DISABLED.

        Defective crosspoints keep their defect mode — programming cannot
        repair silicon.
        """
        active = set(positions)
        for row, column in self.positions():
            device = self._devices[row][column]
            if device.mode.is_defective:
                continue
            device.mode = (
                DeviceMode.ACTIVE if (row, column) in active else DeviceMode.DISABLED
            )

    # ------------------------------------------------------------------
    # Logic-level access (used by the controller / simulator)
    # ------------------------------------------------------------------
    def initialize_all(self) -> None:
        """INA phase: RESET every device towards ``R_OFF`` (logic 1)."""
        for row, column in self.positions():
            self._devices[row][column].reset()

    def write_logic(self, row: int, column: int, value: int | bool) -> None:
        """Program a logic value into an (active) crosspoint."""
        self.device(row, column).write_logic(value)

    def read_logic(self, row: int, column: int) -> int:
        """Read the Snider logic value stored at a crosspoint."""
        return self.device(row, column).logic_value

    def row_logic_values(self, row: int, columns: Iterable[int]) -> list[int]:
        """Logic values along one horizontal line at selected columns."""
        return [self.read_logic(row, column) for column in columns]

    def logic_snapshot(self) -> list[list[int]]:
        """Logic value of every crosspoint (row-major nested lists)."""
        return [
            [self._devices[row][column].logic_value for column in range(self._columns)]
            for row in range(self._rows)
        ]

    def mode_snapshot(self) -> list[list[DeviceMode]]:
        """Mode of every crosspoint (row-major nested lists)."""
        return [
            [self._devices[row][column].mode for column in range(self._columns)]
            for row in range(self._rows)
        ]

    def count_mode(self, mode: DeviceMode) -> int:
        """Number of crosspoints currently in ``mode``."""
        return sum(
            1
            for row, column in self.positions()
            if self._devices[row][column].mode == mode
        )

    def __repr__(self) -> str:
        return (
            f"CrossbarArray({self._rows}x{self._columns}, "
            f"defects={self.defect_count()})"
        )
