"""Memristive crossbar substrate: devices, arrays, designs and simulation.

Implements the architecture of §II–III of the paper: the Snider-logic
memristor device model, the crossbar array fabric, two-level (NAND–AND
plane) and multi-level (connection-column) designs, the phase state
machines of Figs. 2(b)/4(b), a behavioural simulator that is defect-aware,
and the area/inclusion-ratio metrics used throughout the evaluation.
"""

from repro.crossbar.array import CrossbarArray
from repro.crossbar.controller import CrossbarController, PhaseTrace
from repro.crossbar.device import (
    DeviceMode,
    DeviceParameters,
    LOGIC_OF_STATE,
    Memristor,
    ResistiveState,
    STATE_OF_LOGIC,
)
from repro.crossbar.layout import (
    ColumnKind,
    ColumnRole,
    CrossbarLayout,
    RowKind,
    RowRole,
)
from repro.crossbar.metrics import (
    DualSelection,
    choose_dual,
    inclusion_ratio,
    two_level_area_of,
)
from repro.crossbar.multi_level import MultiLevelDesign, OutputTap
from repro.crossbar.simulator import (
    SIMULATOR_ENGINES,
    SimulationResult,
    evaluate_multi_level,
    evaluate_two_level,
    evaluate_two_level_batch,
    verify_layout,
)
from repro.crossbar.states import (
    MULTI_LEVEL_TRANSITIONS,
    Phase,
    PhaseStateMachine,
    TWO_LEVEL_SEQUENCE,
    TWO_LEVEL_TRANSITIONS,
    multi_level_sequence,
)
from repro.crossbar.two_level import (
    TwoLevelAreaReport,
    TwoLevelDesign,
    two_level_area_cost,
    two_level_area_cost_batch,
)

__all__ = [
    "Memristor",
    "DeviceMode",
    "DeviceParameters",
    "ResistiveState",
    "LOGIC_OF_STATE",
    "STATE_OF_LOGIC",
    "CrossbarArray",
    "CrossbarLayout",
    "ColumnKind",
    "ColumnRole",
    "RowKind",
    "RowRole",
    "TwoLevelDesign",
    "TwoLevelAreaReport",
    "two_level_area_cost",
    "two_level_area_cost_batch",
    "MultiLevelDesign",
    "OutputTap",
    "Phase",
    "PhaseStateMachine",
    "TWO_LEVEL_SEQUENCE",
    "TWO_LEVEL_TRANSITIONS",
    "MULTI_LEVEL_TRANSITIONS",
    "multi_level_sequence",
    "CrossbarController",
    "PhaseTrace",
    "SimulationResult",
    "SIMULATOR_ENGINES",
    "evaluate_two_level",
    "evaluate_two_level_batch",
    "evaluate_multi_level",
    "verify_layout",
    "DualSelection",
    "choose_dual",
    "two_level_area_of",
    "inclusion_ratio",
]
