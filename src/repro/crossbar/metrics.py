"""Area/IR metrics and the paper's dual (``f`` vs ``f̄``) selection step.

The paper's Algorithm 1 begins by computing the area cost of the logic
function *and its negation* and mapping whichever is smaller — the
crossbar produces both polarities anyway, so implementing ``f̄`` and
reading the complemented output costs nothing.  :func:`choose_dual`
implements that selection for the two-level architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolean.complement import ComplementOverflowError
from repro.boolean.function import BooleanFunction
from repro.crossbar.two_level import two_level_area_cost


@dataclass(frozen=True)
class DualSelection:
    """Outcome of the dual (function vs complement) selection.

    Attributes
    ----------
    implementation:
        The function that should be mapped (either the original or its
        complement).
    used_complement:
        True when the complemented circuit is the cheaper one.
    original_area / complement_area:
        Two-level area costs of both candidates; ``complement_area`` is
        ``None`` when the complement could not be computed within budget.
    """

    implementation: BooleanFunction
    used_complement: bool
    original_area: int
    complement_area: int | None

    @property
    def selected_area(self) -> int:
        """Area of the selected implementation."""
        if self.used_complement and self.complement_area is not None:
            return self.complement_area
        return self.original_area


def two_level_area_of(function: BooleanFunction, *, extra_rows: int = 0) -> int:
    """Two-level crossbar area of a function, ``(P + O)(2I + 2O)``."""
    return two_level_area_cost(
        function.num_inputs,
        function.num_outputs,
        function.num_products,
        extra_rows=extra_rows,
    )


def choose_dual(
    function: BooleanFunction,
    *,
    minimize_complement: bool = True,
    complement_budget: int = 50_000,
) -> DualSelection:
    """Pick the cheaper of a function and its complement for mapping.

    The complement is minimised before comparison when
    ``minimize_complement`` is set (the paper compares synthesised
    covers, not raw complements).  When the complement cannot be computed
    within the cube budget the original function is kept.
    """
    original_area = two_level_area_of(function)
    try:
        complement = function.complement(max_cubes=complement_budget)
    except ComplementOverflowError:
        return DualSelection(function, False, original_area, None)
    if minimize_complement:
        complement = complement.minimized()
    complement_area = two_level_area_of(complement)
    if complement_area < original_area:
        return DualSelection(complement, True, original_area, complement_area)
    return DualSelection(function, False, original_area, complement_area)


def inclusion_ratio(used_memristors: int, area: int) -> float:
    """The paper's IR metric: used memristors divided by crossbar area."""
    if area <= 0:
        return 0.0
    return used_memristors / area
