"""Crossbar layouts: which crosspoints a design activates and why.

A layout is the bridge between the logic level (Boolean functions, NAND
networks) and the physical level (the :class:`~repro.crossbar.array.
CrossbarArray`):

* every vertical line gets a :class:`ColumnRole` (an input-latch column
  of a given polarity, a multi-level connection column, or an output
  column of a given polarity);
* every horizontal line gets a :class:`RowRole` (a product/NAND-gate row
  or an output-latch row);
* the set of *active* crosspoints — the memristors that must be able to
  switch — is recorded explicitly; every other crosspoint is disabled.

Layouts use *logical* row indices.  The defect-tolerant mapper assigns
logical rows to physical crossbar lines; :meth:`CrossbarLayout.with_row_
assignment` applies such a permutation so the simulator can run the
mapped design on a defective array.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import CrossbarError


class ColumnKind(enum.Enum):
    """What a vertical line is used for."""

    INPUT = "input"
    CONNECTION = "connection"
    OUTPUT = "output"


class RowKind(enum.Enum):
    """What a horizontal line is used for."""

    PRODUCT = "product"
    GATE = "gate"
    OUTPUT = "output"


@dataclass(frozen=True)
class ColumnRole:
    """Role of one vertical line.

    ``index`` is the input, gate or output index; ``polarity`` is True for
    the uncomplemented column (``x`` or ``f``) and False for the
    complemented one (``x̄`` or ``f̄``); connection columns have no
    polarity.
    """

    kind: ColumnKind
    index: int
    polarity: bool | None = None

    def label(self) -> str:
        """Readable column label such as ``x3``, ``~x3``, ``g2`` or ``f1``."""
        if self.kind == ColumnKind.INPUT:
            base = f"x{self.index + 1}"
            return base if self.polarity else f"~{base}"
        if self.kind == ColumnKind.CONNECTION:
            return f"g{self.index}"
        base = f"f{self.index}"
        return base if self.polarity else f"~{base}"


@dataclass(frozen=True)
class RowRole:
    """Role of one horizontal line (``index`` is product/gate/output index)."""

    kind: RowKind
    index: int

    def label(self) -> str:
        """Readable row label such as ``m1``, ``g2`` or ``O1``."""
        if self.kind == RowKind.PRODUCT:
            return f"m{self.index + 1}"
        if self.kind == RowKind.GATE:
            return f"g{self.index}"
        return f"O{self.index + 1}"


class CrossbarLayout:
    """An annotated programming plan for a crossbar array."""

    def __init__(
        self,
        row_roles: Sequence[RowRole],
        column_roles: Sequence[ColumnRole],
        active: Iterable[tuple[int, int]],
        *,
        name: str = "",
    ):
        self._row_roles = tuple(row_roles)
        self._column_roles = tuple(column_roles)
        self._name = str(name)
        self._active: set[tuple[int, int]] = set()
        for row, column in active:
            if not 0 <= row < len(self._row_roles):
                raise CrossbarError(f"active crosspoint row {row} out of range")
            if not 0 <= column < len(self._column_roles):
                raise CrossbarError(f"active crosspoint column {column} out of range")
            self._active.add((row, column))

    # ------------------------------------------------------------------
    # Geometry and roles
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Design name."""
        return self._name

    @property
    def rows(self) -> int:
        """Number of horizontal lines."""
        return len(self._row_roles)

    @property
    def columns(self) -> int:
        """Number of vertical lines."""
        return len(self._column_roles)

    @property
    def area(self) -> int:
        """Crossbar area in crosspoints (the paper's area cost)."""
        return self.rows * self.columns

    @property
    def row_roles(self) -> tuple[RowRole, ...]:
        """Roles of the horizontal lines, by logical row index."""
        return self._row_roles

    @property
    def column_roles(self) -> tuple[ColumnRole, ...]:
        """Roles of the vertical lines, by column index."""
        return self._column_roles

    @property
    def active_crosspoints(self) -> frozenset[tuple[int, int]]:
        """All crosspoints that must carry a switchable device."""
        return frozenset(self._active)

    def active_count(self) -> int:
        """Number of active crosspoints (used memristors)."""
        return len(self._active)

    @property
    def inclusion_ratio(self) -> float:
        """Paper's IR metric: used memristors / area."""
        if self.area == 0:
            return 0.0
        return self.active_count() / self.area

    def is_active(self, row: int, column: int) -> bool:
        """True if the crosspoint must be programmable."""
        return (row, column) in self._active

    def active_in_row(self, row: int) -> list[int]:
        """Columns with an active device on a given row, sorted."""
        return sorted(c for r, c in self._active if r == row)

    def active_in_column(self, column: int) -> list[int]:
        """Rows with an active device on a given column, sorted."""
        return sorted(r for r, c in self._active if c == column)

    def columns_of_kind(self, kind: ColumnKind) -> list[int]:
        """Column indices whose role has the given kind."""
        return [i for i, role in enumerate(self._column_roles) if role.kind == kind]

    def rows_of_kind(self, kind: RowKind) -> list[int]:
        """Row indices whose role has the given kind."""
        return [i for i, role in enumerate(self._row_roles) if role.kind == kind]

    def column_index(
        self, kind: ColumnKind, index: int, polarity: bool | None = None
    ) -> int:
        """Find the column with an exact role."""
        target = ColumnRole(kind, index, polarity)
        for i, role in enumerate(self._column_roles):
            if role == target:
                return i
        raise CrossbarError(f"no column with role {target}")

    def row_index(self, kind: RowKind, index: int) -> int:
        """Find the row with an exact role."""
        target = RowRole(kind, index)
        for i, role in enumerate(self._row_roles):
            if role == target:
                return i
        raise CrossbarError(f"no row with role {target}")

    # ------------------------------------------------------------------
    # Row assignment (defect-tolerant mapping support)
    # ------------------------------------------------------------------
    def with_row_assignment(
        self, assignment: Mapping[int, int] | Sequence[int]
    ) -> "CrossbarLayout":
        """Permute logical rows onto physical crossbar lines.

        ``assignment`` maps logical row index → physical row index; it must
        be injective.  Unassigned physical rows become padding rows with no
        active devices (they keep a synthetic OUTPUT role with index -1 so
        the layout stays rectangular).
        """
        if isinstance(assignment, Mapping):
            mapping = {int(k): int(v) for k, v in assignment.items()}
        else:
            mapping = {i: int(v) for i, v in enumerate(assignment)}
        if len(mapping) != self.rows:
            raise CrossbarError(
                f"assignment covers {len(mapping)} rows, layout has {self.rows}"
            )
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise CrossbarError("row assignment must be injective")
        physical_rows = max(targets) + 1 if targets else 0
        if physical_rows < self.rows:
            physical_rows = self.rows

        placeholder = RowRole(RowKind.OUTPUT, -1)
        new_roles: list[RowRole] = [placeholder] * physical_rows
        for logical, physical in mapping.items():
            new_roles[physical] = self._row_roles[logical]
        new_active = {
            (mapping[row], column) for row, column in self._active
        }
        return CrossbarLayout(
            new_roles, self._column_roles, new_active, name=self._name
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_matrix(self) -> list[list[int]]:
        """0/1 matrix of active crosspoints (the paper's function matrix view)."""
        matrix = [[0] * self.columns for _ in range(self.rows)]
        for row, column in self._active:
            matrix[row][column] = 1
        return matrix

    def render(self) -> str:
        """ASCII diagram of the layout (● active, · disabled)."""
        header = "      " + " ".join(
            f"{role.label():>4}" for role in self._column_roles
        )
        lines = [header]
        for row in range(self.rows):
            cells = " ".join(
                f"{'●' if self.is_active(row, column) else '·':>4}"
                for column in range(self.columns)
            )
            lines.append(f"{self._row_roles[row].label():>5} {cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CrossbarLayout({self._name or '<anonymous>'}: {self.rows}x"
            f"{self.columns}, active={self.active_count()}, "
            f"IR={self.inclusion_ratio:.2%})"
        )
