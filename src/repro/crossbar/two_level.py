"""Two-level (NAND–AND plane) crossbar designs (paper §II, Fig. 2/3).

A :class:`TwoLevelDesign` turns a multi-output Boolean function into a
crossbar layout:

* one horizontal line per shared product (the NAND plane row computes the
  *complement* of the product as a NAND of its literals);
* one horizontal line per output (the output-latch row);
* vertical lines: the input latch in both polarities (``x`` block then
  ``x̄`` block), then the ``f`` block and the ``f̄`` block — the same
  column order as the paper's Fig. 8 function matrix;
* each product row additionally carries one AND-plane device per output
  it drives, sitting in that output's ``f`` column.

The design's area is ``(P + O) · (2I + 2O)``, which reproduces the area
figures of the paper's Tables I and II (see DESIGN.md §4 for the
calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolean.function import BooleanFunction
from repro.crossbar.layout import (
    ColumnKind,
    ColumnRole,
    CrossbarLayout,
    RowKind,
    RowRole,
)
from repro.exceptions import CrossbarError


@dataclass(frozen=True)
class TwoLevelAreaReport:
    """Size breakdown of a two-level crossbar design."""

    rows: int
    columns: int
    product_rows: int
    output_rows: int
    input_columns: int
    output_columns: int
    active_devices: int

    @property
    def area(self) -> int:
        """Total crossbar area (rows × columns)."""
        return self.rows * self.columns

    @property
    def inclusion_ratio(self) -> float:
        """Used memristors / area (the paper's IR)."""
        if self.area == 0:
            return 0.0
        return self.active_devices / self.area


def two_level_area_cost(
    num_inputs: int, num_outputs: int, num_products: int, *, extra_rows: int = 0
) -> int:
    """Closed-form two-level area: ``(P + O + extra) · (2I + 2O)``.

    ``extra_rows`` defaults to 0, which matches every benchmark entry of
    the paper's Tables I/II; the §II running example counts one extra
    bookkeeping row (see DESIGN.md).
    """
    if num_inputs < 0 or num_outputs < 0 or num_products < 0:
        raise CrossbarError("I, O and P must be non-negative")
    rows = num_products + num_outputs + extra_rows
    columns = 2 * num_inputs + 2 * num_outputs
    return rows * columns


def two_level_area_cost_batch(
    num_inputs: int, num_outputs: int, num_products, *, extra_rows: int = 0
):
    """Vectorized :func:`two_level_area_cost` over a product-count array.

    ``num_products`` is any array-like of per-sample product counts; the
    return value is the matching ``int64`` area array.  One broadcasted
    multiply replaces the per-sample calls of batched area studies.
    """
    import numpy as np

    products = np.asarray(num_products, dtype=np.int64)
    if num_inputs < 0 or num_outputs < 0 or (products.size and products.min() < 0):
        raise CrossbarError("I, O and P must be non-negative")
    rows = products + num_outputs + extra_rows
    return rows * (2 * num_inputs + 2 * num_outputs)


class TwoLevelDesign:
    """A Boolean function mapped onto the two-level crossbar architecture."""

    def __init__(self, function: BooleanFunction, *, extra_rows: int = 0):
        if function.num_products == 0:
            raise CrossbarError(
                "cannot build a two-level design for a function with no products"
            )
        self._function = function
        self._extra_rows = int(extra_rows)
        self._layout = self._build_layout()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_layout(self) -> CrossbarLayout:
        function = self._function
        num_inputs = function.num_inputs
        num_outputs = function.num_outputs

        column_roles: list[ColumnRole] = []
        column_roles.extend(
            ColumnRole(ColumnKind.INPUT, i, True) for i in range(num_inputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.INPUT, i, False) for i in range(num_inputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.OUTPUT, o, True) for o in range(num_outputs)
        )
        column_roles.extend(
            ColumnRole(ColumnKind.OUTPUT, o, False) for o in range(num_outputs)
        )

        row_roles: list[RowRole] = []
        row_roles.extend(
            RowRole(RowKind.PRODUCT, p) for p in range(function.num_products)
        )
        row_roles.extend(RowRole(RowKind.OUTPUT, o) for o in range(num_outputs))
        row_roles.extend(
            RowRole(RowKind.OUTPUT, -1) for _ in range(self._extra_rows)
        )

        positive_input_column = {i: i for i in range(num_inputs)}
        negative_input_column = {i: num_inputs + i for i in range(num_inputs)}
        positive_output_column = {
            o: 2 * num_inputs + o for o in range(num_outputs)
        }
        negative_output_column = {
            o: 2 * num_inputs + num_outputs + o for o in range(num_outputs)
        }

        active: set[tuple[int, int]] = set()
        for row, product in enumerate(function.products):
            for index, polarity in product.cube.literals():
                column = (
                    positive_input_column[index]
                    if polarity
                    else negative_input_column[index]
                )
                active.add((row, column))
            for output in product.outputs:
                active.add((row, positive_output_column[output]))
        for output in range(num_outputs):
            output_row = function.num_products + output
            active.add((output_row, positive_output_column[output]))
            active.add((output_row, negative_output_column[output]))

        return CrossbarLayout(
            row_roles, column_roles, active, name=function.name or "two-level"
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def function(self) -> BooleanFunction:
        """The source Boolean function."""
        return self._function

    @property
    def layout(self) -> CrossbarLayout:
        """The crossbar programming plan."""
        return self._layout

    @property
    def area(self) -> int:
        """Crossbar area (rows × columns)."""
        return self._layout.area

    @property
    def inclusion_ratio(self) -> float:
        """Used memristors / area."""
        return self._layout.inclusion_ratio

    def area_report(self) -> TwoLevelAreaReport:
        """Detailed size breakdown."""
        function = self._function
        return TwoLevelAreaReport(
            rows=self._layout.rows,
            columns=self._layout.columns,
            product_rows=function.num_products,
            output_rows=function.num_outputs + self._extra_rows,
            input_columns=2 * function.num_inputs,
            output_columns=2 * function.num_outputs,
            active_devices=self._layout.active_count(),
        )

    def __repr__(self) -> str:
        return (
            f"TwoLevelDesign({self._function.name or '<anonymous>'}: "
            f"{self._layout.rows}x{self._layout.columns}, area={self.area}, "
            f"IR={self.inclusion_ratio:.2%})"
        )
