"""A CMOS-controller model that drives the crossbar phase by phase.

The :mod:`repro.crossbar.simulator` module evaluates layouts in one shot;
this controller wraps the same semantics in the explicit state machine of
the paper's Figs. 2(b)/4(b) so examples and tests can observe the
intermediate state after every phase (input latch contents after RI,
NAND-plane programming after CFM, row results after EVM, and so on).
The controller also programs the physical array — active crosspoints
become ACTIVE devices, all remaining functional crosspoints are DISABLED
— which is how defect-aware runs exercise the device layer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.crossbar.array import CrossbarArray
from repro.crossbar.layout import ColumnKind, CrossbarLayout, RowKind
from repro.crossbar.simulator import (
    SimulationResult,
    evaluate_multi_level,
    evaluate_two_level,
)
from repro.crossbar.states import (
    Phase,
    PhaseStateMachine,
    TWO_LEVEL_SEQUENCE,
    multi_level_sequence,
)
from repro.exceptions import CrossbarError


@dataclass
class PhaseTrace:
    """Snapshot of controller-visible state after one phase."""

    phase: Phase
    description: str
    input_latch: dict[str, int] = field(default_factory=dict)
    row_values: dict[int, int] = field(default_factory=dict)
    connection_values: dict[int, int] = field(default_factory=dict)
    outputs: list[int] = field(default_factory=list)


class CrossbarController:
    """Drives a programmed crossbar through a full computation.

    Parameters
    ----------
    layout:
        The design to execute.
    array:
        The physical array; created to fit the layout when omitted.
    multi_level:
        Selects the multi-level state machine and evaluation semantics.
    """

    def __init__(
        self,
        layout: CrossbarLayout,
        *,
        array: CrossbarArray | None = None,
        multi_level: bool = False,
    ):
        self._layout = layout
        self._multi_level = bool(multi_level)
        self._array = array or CrossbarArray(layout.rows, layout.columns)
        if self._array.rows < layout.rows or self._array.columns < layout.columns:
            raise CrossbarError("array is smaller than the layout")
        self._machine = PhaseStateMachine(multi_level=self._multi_level)
        self._programmed = False

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    @property
    def layout(self) -> CrossbarLayout:
        """The executed design."""
        return self._layout

    @property
    def array(self) -> CrossbarArray:
        """The physical array the design runs on."""
        return self._array

    @property
    def state_machine(self) -> PhaseStateMachine:
        """The phase state machine (exposes history and current phase)."""
        return self._machine

    def program(self) -> int:
        """Program device modes from the layout; returns the active count.

        Defective devices keep their defect mode; the caller can compare
        the returned count with ``layout.active_count()`` to detect how
        many required devices could not be programmed.
        """
        self._array.program_active(self._layout.active_crosspoints)
        self._programmed = True
        programmed = 0
        for row, column in self._layout.active_crosspoints:
            if self._array.mode(row, column).name == "ACTIVE":
                programmed += 1
        return programmed

    def unprogrammable_crosspoints(self) -> list[tuple[int, int]]:
        """Active crosspoints that landed on defective devices."""
        return [
            (row, column)
            for row, column in sorted(self._layout.active_crosspoints)
            if self._array.mode(row, column).is_defective
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, assignment: Sequence[int] | Sequence[bool]
    ) -> tuple[SimulationResult, list[PhaseTrace]]:
        """Execute one full computation, returning results and phase traces."""
        if not self._programmed:
            self.program()
        self._machine.reset()

        evaluate = evaluate_multi_level if self._multi_level else evaluate_two_level
        result = evaluate(self._layout, assignment, array=self._array)

        traces: list[PhaseTrace] = []
        if self._multi_level:
            gate_rows = self._layout.rows_of_kind(RowKind.GATE)
            sequence = multi_level_sequence(max(1, len(gate_rows)))
        else:
            sequence = TWO_LEVEL_SEQUENCE

        input_latch = self._input_latch_view(assignment)
        evaluated_rows: dict[int, int] = {}
        gate_iter = iter(sorted(result.row_values))
        for phase in sequence:
            self._machine.advance(phase)
            trace = PhaseTrace(phase=phase, description=_PHASE_DESCRIPTIONS[phase])
            if phase == Phase.INA:
                self._array.initialize_all()
            elif phase == Phase.RI:
                trace.input_latch = dict(input_latch)
            elif phase == Phase.CFM:
                trace.input_latch = dict(input_latch)
            elif phase == Phase.EVM:
                if self._multi_level:
                    try:
                        row = next(gate_iter)
                        evaluated_rows[row] = result.row_values[row]
                    except StopIteration:
                        pass
                else:
                    evaluated_rows.update(result.row_values)
                trace.row_values = dict(evaluated_rows)
            elif phase == Phase.CR:
                trace.connection_values = dict(result.connection_values)
            elif phase in (Phase.EVR, Phase.INR):
                trace.row_values = dict(evaluated_rows)
            elif phase == Phase.SO:
                trace.outputs = list(result.outputs)
            traces.append(trace)
        return result, traces

    def compute(self, assignment: Sequence[int] | Sequence[bool]) -> list[int]:
        """Convenience wrapper returning only the output bits."""
        result, _ = self.run(assignment)
        return result.outputs

    def _input_latch_view(
        self, assignment: Sequence[int] | Sequence[bool]
    ) -> dict[str, int]:
        view: dict[str, int] = {}
        for column in self._layout.columns_of_kind(ColumnKind.INPUT):
            role = self._layout.column_roles[column]
            value = 1 if assignment[role.index] else 0
            view[role.label()] = value if role.polarity else 1 - value
        return view


_PHASE_DESCRIPTIONS = {
    Phase.INA: "initialize all memristors to R_OFF",
    Phase.RI: "input latch receives inputs from the CMOS controller",
    Phase.CFM: "configure minterms by copying the input latch values",
    Phase.EVM: "evaluate NAND row(s)",
    Phase.EVR: "evaluate the AND plane (output columns)",
    Phase.CR: "copy the evaluated result to its multi-level connection column",
    Phase.INR: "invert the results to obtain f from f̄",
    Phase.SO: "send outputs to the output latch",
}
