"""Behavioural memristor device model (Snider Boolean logic convention).

The paper uses HP-style bipolar memristors as the crosspoint switches:
an ideal device switches to its low-resistance state ``R_ON`` when the
voltage across it exceeds the SET threshold and back to ``R_OFF`` when it
drops below the (negative) RESET threshold; between the thresholds the
state is retained (non-volatility).  Under the Snider Boolean logic model
adopted by the paper, ``R_ON`` represents logic 0 and ``R_OFF`` logic 1.

Devices can be *programmed* into two operational ranges (paper §II-C):

* ``ACTIVE``  — the device may switch freely between the two states;
* ``DISABLED`` — the device is permanently kept at ``R_OFF`` (a logic 1
  that never interferes with a NAND row).

Fabrication defects add two more, non-programmable, modes (paper §IV-A):

* ``STUCK_OPEN``   — permanently ``R_OFF`` regardless of applied voltage;
* ``STUCK_CLOSED`` — permanently ``R_ON`` regardless of applied voltage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import CrossbarError


class DeviceMode(enum.Enum):
    """Programming/defect mode of a crosspoint device."""

    ACTIVE = "active"
    DISABLED = "disabled"
    STUCK_OPEN = "stuck_open"
    STUCK_CLOSED = "stuck_closed"

    @property
    def is_defective(self) -> bool:
        """True for the two fabrication-defect modes."""
        return self in (DeviceMode.STUCK_OPEN, DeviceMode.STUCK_CLOSED)


class ResistiveState(enum.Enum):
    """The two stable resistance states of a memristor."""

    LOW = "R_ON"
    HIGH = "R_OFF"


#: Snider Boolean logic: low resistance encodes logic 0, high encodes logic 1.
LOGIC_OF_STATE = {ResistiveState.LOW: 0, ResistiveState.HIGH: 1}
STATE_OF_LOGIC = {0: ResistiveState.LOW, 1: ResistiveState.HIGH}


@dataclass(frozen=True)
class DeviceParameters:
    """Electrical parameters of the memristor model.

    The defaults follow the qualitative I–V picture of Fig. 1 of the
    paper: write voltage above the SET threshold, a "half-select" hold
    voltage ``v_hold`` that must never disturb the state, and symmetric
    RESET behaviour for negative voltages.
    """

    r_on: float = 1e3
    r_off: float = 1e6
    v_set: float = 2.0
    v_reset: float = -2.0
    v_hold: float = 1.0

    def __post_init__(self) -> None:
        if self.r_on <= 0 or self.r_off <= 0:
            raise CrossbarError("resistances must be positive")
        if self.r_on >= self.r_off:
            raise CrossbarError("R_ON must be smaller than R_OFF")
        if self.v_set <= 0:
            raise CrossbarError("v_set must be positive")
        if self.v_reset >= 0:
            raise CrossbarError("v_reset must be negative")
        if not 0 <= self.v_hold < self.v_set:
            raise CrossbarError("v_hold must lie strictly below v_set")


class Memristor:
    """A single crosspoint memristor with mode, state and switching rules."""

    __slots__ = ("_parameters", "_mode", "_state")

    def __init__(
        self,
        parameters: DeviceParameters | None = None,
        *,
        mode: DeviceMode = DeviceMode.ACTIVE,
        state: ResistiveState = ResistiveState.HIGH,
    ):
        self._parameters = parameters or DeviceParameters()
        self._mode = mode
        self._state = self._coerce_state(state)

    # ------------------------------------------------------------------
    # Mode and state
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> DeviceParameters:
        """Electrical parameters of the device."""
        return self._parameters

    @property
    def mode(self) -> DeviceMode:
        """Current programming/defect mode."""
        return self._mode

    @mode.setter
    def mode(self, mode: DeviceMode) -> None:
        if self._mode.is_defective and not mode.is_defective:
            raise CrossbarError(
                "a fabrication defect cannot be reprogrammed into a functional mode"
            )
        self._mode = mode
        self._state = self._coerce_state(self._state)

    @property
    def state(self) -> ResistiveState:
        """Current resistance state, accounting for the device mode."""
        return self._coerce_state(self._state)

    def _coerce_state(self, state: ResistiveState) -> ResistiveState:
        if self._mode in (DeviceMode.DISABLED, DeviceMode.STUCK_OPEN):
            return ResistiveState.HIGH
        if self._mode == DeviceMode.STUCK_CLOSED:
            return ResistiveState.LOW
        return state

    @property
    def resistance(self) -> float:
        """Present resistance in ohms."""
        if self.state == ResistiveState.LOW:
            return self._parameters.r_on
        return self._parameters.r_off

    @property
    def logic_value(self) -> int:
        """Snider Boolean logic value (R_ON → 0, R_OFF → 1)."""
        return LOGIC_OF_STATE[self.state]

    # ------------------------------------------------------------------
    # Switching behaviour
    # ------------------------------------------------------------------
    def apply_voltage(self, voltage: float) -> ResistiveState:
        """Apply a voltage across the device and return the new state.

        Only ``ACTIVE`` devices respond; disabled and defective devices
        keep their forced state.  Voltages whose magnitude stays at or
        below ``v_hold`` never disturb the state (half-select safety).
        """
        if self._mode != DeviceMode.ACTIVE:
            return self.state
        if voltage >= self._parameters.v_set:
            self._state = ResistiveState.LOW
        elif voltage <= self._parameters.v_reset:
            self._state = ResistiveState.HIGH
        return self._state

    def write_logic(self, value: int | bool) -> ResistiveState:
        """Program a logic value by applying the appropriate write voltage.

        Logic 0 is stored as ``R_ON`` (a SET pulse), logic 1 as ``R_OFF``
        (a RESET pulse), matching the Snider convention.
        """
        if value not in (0, 1, True, False):
            raise CrossbarError(f"logic value must be 0/1, got {value!r}")
        write_margin = 1.5
        if bool(value):
            return self.apply_voltage(self._parameters.v_reset * write_margin)
        return self.apply_voltage(self._parameters.v_set * write_margin)

    def reset(self) -> ResistiveState:
        """RESET pulse: drive the device to ``R_OFF`` (logic 1) if active."""
        return self.apply_voltage(self._parameters.v_reset * 1.5)

    def set(self) -> ResistiveState:
        """SET pulse: drive the device to ``R_ON`` (logic 0) if active."""
        return self.apply_voltage(self._parameters.v_set * 1.5)

    def behaves_as_expected(self) -> bool:
        """Self-test: SET then RESET must land in the corresponding states.

        Always true for ``ACTIVE`` devices, false for stuck devices that do
        not follow at least one of the transitions, and true for
        ``DISABLED`` devices (they are *supposed* to stay at ``R_OFF``).
        """
        if self._mode == DeviceMode.ACTIVE:
            return True
        if self._mode == DeviceMode.DISABLED:
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"Memristor(mode={self._mode.value}, state={self.state.value}, "
            f"logic={self.logic_value})"
        )
