"""Computation phases of the crossbar controller (Figs. 2(b) and 4(b)).

The CMOS controller drives the crossbar through a fixed sequence of
phases.  The two-level design uses

    INA → RI → CFM → EVM → EVR → INR → SO

and the multi-level design replaces the AND-plane evaluation by a
per-gate loop that copies each NAND result into its multi-level
connection column:

    INA → RI → CFM → (EVM → CR)* → EVM → INR → SO

:class:`PhaseStateMachine` validates that a controller implementation
only ever takes legal transitions; the simulator uses it to guarantee the
behavioural model follows the paper's control flow.
"""

from __future__ import annotations

import enum

from repro.exceptions import PhaseOrderError


class Phase(enum.Enum):
    """One computation step of the crossbar state machine."""

    INA = "initialize_all"
    RI = "receive_inputs"
    CFM = "configure_minterms"
    EVM = "evaluate_minterms"
    EVR = "evaluate_results"
    CR = "copy_result"
    INR = "invert_results"
    SO = "send_outputs"


#: Legal transitions of the two-level state machine (Fig. 2(b)).
TWO_LEVEL_TRANSITIONS: dict[Phase, tuple[Phase, ...]] = {
    Phase.INA: (Phase.RI,),
    Phase.RI: (Phase.CFM,),
    Phase.CFM: (Phase.EVM,),
    Phase.EVM: (Phase.EVR,),
    Phase.EVR: (Phase.INR,),
    Phase.INR: (Phase.SO,),
    Phase.SO: (Phase.INA,),
}

#: Legal transitions of the multi-level state machine (Fig. 4(b)).
MULTI_LEVEL_TRANSITIONS: dict[Phase, tuple[Phase, ...]] = {
    Phase.INA: (Phase.RI,),
    Phase.RI: (Phase.CFM,),
    Phase.CFM: (Phase.EVM,),
    Phase.EVM: (Phase.CR, Phase.INR),
    Phase.CR: (Phase.EVM,),
    Phase.INR: (Phase.SO,),
    Phase.SO: (Phase.INA,),
}

#: Canonical phase order of one two-level computation.
TWO_LEVEL_SEQUENCE: tuple[Phase, ...] = (
    Phase.INA,
    Phase.RI,
    Phase.CFM,
    Phase.EVM,
    Phase.EVR,
    Phase.INR,
    Phase.SO,
)


def multi_level_sequence(num_gates: int) -> tuple[Phase, ...]:
    """Canonical phase order for a multi-level computation of ``num_gates``.

    Each gate except the last is followed by a CR phase that copies its
    result into the corresponding multi-level connection column; the last
    gate's result goes straight to inversion and output (the ``nL < n``
    loop condition of Fig. 4(b)).
    """
    if num_gates < 1:
        raise PhaseOrderError("a multi-level computation needs at least one gate")
    phases: list[Phase] = [Phase.INA, Phase.RI, Phase.CFM]
    for gate_index in range(num_gates):
        phases.append(Phase.EVM)
        if gate_index != num_gates - 1:
            phases.append(Phase.CR)
    phases.extend([Phase.INR, Phase.SO])
    return tuple(phases)


class PhaseStateMachine:
    """Transition checker for the crossbar controller.

    Parameters
    ----------
    multi_level:
        Selects the multi-level transition relation (Fig. 4(b)) instead of
        the two-level one (Fig. 2(b)).
    """

    def __init__(self, *, multi_level: bool = False):
        self._transitions = (
            MULTI_LEVEL_TRANSITIONS if multi_level else TWO_LEVEL_TRANSITIONS
        )
        self._multi_level = multi_level
        self._current: Phase | None = None
        self._history: list[Phase] = []

    @property
    def multi_level(self) -> bool:
        """True when the machine follows the multi-level transition relation."""
        return self._multi_level

    @property
    def current(self) -> Phase | None:
        """Current phase, or ``None`` before the first advance."""
        return self._current

    @property
    def history(self) -> tuple[Phase, ...]:
        """All phases visited so far, in order."""
        return tuple(self._history)

    def legal_next_phases(self) -> tuple[Phase, ...]:
        """The phases that may legally follow the current one."""
        if self._current is None:
            return (Phase.INA,)
        return self._transitions[self._current]

    def advance(self, phase: Phase) -> Phase:
        """Move to ``phase``, raising :class:`PhaseOrderError` if illegal."""
        legal = self.legal_next_phases()
        if phase not in legal:
            raise PhaseOrderError(
                f"illegal transition {self._current} -> {phase}; legal next phases "
                f"are {[p.name for p in legal]}"
            )
        self._current = phase
        self._history.append(phase)
        return phase

    def run_sequence(self, phases: tuple[Phase, ...] | list[Phase]) -> None:
        """Advance through a whole sequence, validating every step."""
        for phase in phases:
            self.advance(phase)

    def reset(self) -> None:
        """Forget all progress (a fresh computation)."""
        self._current = None
        self._history.clear()
