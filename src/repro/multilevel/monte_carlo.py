"""Monte-Carlo chunk execution for multi-level (per-stage) mapping.

One multi-level sample is one *full* physical array — every stage's row
bank plus shared spare columns — injected with exactly the same
``model.inject(rows, columns, seed=derive_seed(seed, index))`` call the
two-level engines use, so a multi-level experiment shares the two-level
seed streams sample for sample.  Spare-column repair (when any) runs
once on the full array because all banks share the vertical lines; the
per-stage walk then maps each stage onto its bank slice.

Early-stop fold
---------------
The reference engine walks the stages of each sample in order and stops
at the first stage that fails to map (or maps but fails validation),
accumulating backtracks through the stopping stage *inclusive*.  The
vectorized engine computes per-stage result arrays with the batched
kernel — one shared defect tensor sliced into per-bank sub-batches — and
replays the identical fold with NumPy: both engines therefore report the
same counting statistics (samples, successes, backtracks, invalid
mappings) for every sample, extending the two-level differential
contract to the multi-level pipeline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.seeding import derive_seed
from repro.defects.batch import DefectBatch, repair_spare_columns
from repro.experiments.monte_carlo import AlgorithmOutcome
from repro.mapping.batch_kernel import map_sample_batch, mapper_kind
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.validate import validate_assignment
from repro.multilevel.staging import MultiLevelStagePlan, stage_plan_for

__all__ = ["run_multilevel_chunk"]


def run_multilevel_chunk(task) -> dict[str, AlgorithmOutcome]:
    """Run one multi-level Monte-Carlo chunk; pure function of the task.

    ``task`` is the :class:`repro.experiments.monte_carlo._ChunkTask` of
    a chunk whose ``multilevel`` spec is set.  The stage plan is rebuilt
    here (technology mapping is deterministic, so every worker stages
    identically) and the per-bank spare-row count is recovered from the
    task's physical row total.
    """
    plan = stage_plan_for(task.function, task.multilevel)
    extra_rows = plan.extra_rows_for(task.rows)
    if task.engine in ("vectorized", "compiled"):
        return _run_chunk_vectorized(task, plan, extra_rows)
    return _run_chunk_reference(task, plan, extra_rows)


# ----------------------------------------------------------------------
# Reference engine: object-per-sample early-stop walk (the ground truth).
# ----------------------------------------------------------------------
def _run_chunk_reference(
    task, plan: MultiLevelStagePlan, extra_rows: int
) -> dict[str, AlgorithmOutcome]:
    outcomes = {name: AlgorithmOutcome(algorithm=name) for name in task.mappers}
    banks = plan.bank_bounds(extra_rows)
    spare_columns = task.columns > plan.num_columns
    for sample in range(task.start, task.stop):
        defect_map = task.model.inject(
            task.rows, task.columns, seed=derive_seed(task.seed, sample)
        )
        if spare_columns:
            defect_map = repair_spare_columns(defect_map, plan.num_columns)
            if defect_map is None:
                for outcome in outcomes.values():
                    outcome.samples += 1
                continue
        stage_crossbars = [
            CrossbarMatrix(defect_map.restricted_to_rows(lo, hi))
            for lo, hi in banks
        ]
        for name, mapper in task.mappers.items():
            outcome = outcomes[name]
            outcome.samples += 1
            survived = True
            for stage, crossbar in zip(plan.stages, stage_crossbars):
                mapping = mapper.map(stage.matrix, crossbar)
                outcome.total_runtime += mapping.runtime_seconds
                outcome.total_backtracks += mapping.statistics.backtracks
                if not mapping.success:
                    survived = False
                    break
                if task.validate and not validate_assignment(
                    stage.matrix, crossbar, mapping
                ):
                    outcome.invalid_mappings += 1
                    survived = False
                    break
            if survived:
                outcome.successes += 1
    return outcomes


# ----------------------------------------------------------------------
# Vectorized engine: one full-array tensor, per-bank sub-batches, NumPy
# replay of the early-stop fold.
# ----------------------------------------------------------------------
def _run_chunk_vectorized(
    task, plan: MultiLevelStagePlan, extra_rows: int
) -> dict[str, AlgorithmOutcome]:
    count = task.stop - task.start

    shared_start = time.perf_counter()
    full = DefectBatch.generate(
        task.model,
        task.rows,
        task.columns,
        seed=task.seed,
        start=task.start,
        stop=task.stop,
        required_columns=plan.num_columns,
    )
    shared_seconds = time.perf_counter() - shared_start

    # Per-bank DefectMap slices are only needed by the object-path
    # fallback, so they are materialised only when an opaque (non
    # built-in) mapper is present.
    need_maps = any(
        mapper_kind(mapper) is None for mapper in task.mappers.values()
    )

    num_stages = plan.num_stages
    succ = {name: np.zeros((num_stages, count), dtype=bool) for name in task.mappers}
    bt = {
        name: np.zeros((num_stages, count), dtype=np.int64) for name in task.mappers
    }
    inval = {name: np.zeros((num_stages, count), dtype=bool) for name in task.mappers}
    runtime = {name: 0.0 for name in task.mappers}

    for k, (stage, (lo, hi)) in enumerate(
        zip(plan.stages, plan.bank_bounds(extra_rows))
    ):
        if need_maps:
            maps = [
                None if m is None else m.restricted_to_rows(lo, hi)
                for m in full.maps
            ]
        else:
            maps = [None] * count
        sub = DefectBatch(
            start=full.start,
            stop=full.stop,
            rows=hi - lo,
            columns=full.columns,
            maps=maps,
            functional=full.functional[:, lo:hi, :],
            closed_rows=full.closed_rows[:, lo:hi],
            closed_columns=full.closed_columns,
            dropped=full.dropped,
        )
        result = map_sample_batch(
            stage.matrix,
            task.mappers,
            None,
            rows=hi - lo,
            columns=full.columns,
            seed=task.seed,
            start=task.start,
            stop=task.stop,
            validate=task.validate,
            batch=sub,
            engine=task.engine,
        )
        shared_seconds += result.shared_seconds
        for name, stage_outcome in result.outcomes.items():
            succ[name][k] = stage_outcome.success
            bt[name][k] = stage_outcome.backtracks
            inval[name][k] = stage_outcome.invalid
            runtime[name] += float(stage_outcome.runtime.sum())

    shared_share = shared_seconds / max(1, len(task.mappers))
    outcomes = {}
    for name in task.mappers:
        stats = _fold_stage_arrays(succ[name], bt[name], inval[name])
        outcomes[name] = AlgorithmOutcome(
            algorithm=name,
            successes=stats["successes"],
            samples=count,
            total_runtime=runtime[name] + shared_share,
            total_backtracks=stats["total_backtracks"],
            invalid_mappings=stats["invalid_mappings"],
        )
    return outcomes


def _fold_stage_arrays(
    succ: np.ndarray, bt: np.ndarray, inval: np.ndarray
) -> dict:
    """NumPy replay of the reference engine's early-stop walk.

    All arrays are ``(stages, samples)``.  A sample survives iff every
    stage succeeded; otherwise its walk stopped at the first non-success
    stage (the kernel reports validation rejects as ``invalid`` with
    ``success`` False, so "non-success" covers both failure modes).
    Backtracks accumulate through the stopping stage inclusive, exactly
    as the reference walk counts them before breaking.
    """
    num_stages, count = succ.shape
    if count == 0:
        return {"successes": 0, "total_backtracks": 0, "invalid_mappings": 0}
    fail = ~succ
    stopped = fail.any(axis=0)
    first = np.where(stopped, fail.argmax(axis=0), num_stages - 1)
    attempted = np.arange(num_stages)[:, None] <= first[None, :]
    total_backtracks = int((bt * attempted).sum())
    invalid = stopped & inval[first, np.arange(count)]
    return {
        "successes": int((~stopped).sum()),
        "total_backtracks": total_backtracks,
        "invalid_mappings": int(invalid.sum()),
    }
