"""Multi-level pipeline subsystem: decompose → tech-map → per-stage mapping.

The package stages a technology-mapped NAND network
(:mod:`repro.synth`) realised as a multi-level crossbar
(:mod:`repro.crossbar.multi_level`) into per-level row banks and runs
the existing defect-tolerant mappers independently on each bank,
reporting whole-network survival.  It plugs into the Monte-Carlo
harness via the ``multilevel=`` spec of
:func:`repro.experiments.monte_carlo.run_mapping_monte_carlo` and into
the fluent API via ``Design.decompose().tech_map()``.
"""

from repro.multilevel.mapping import (
    MultiLevelMappingResult,
    StageMappingOutcome,
    map_multilevel,
)
from repro.multilevel.monte_carlo import run_multilevel_chunk
from repro.multilevel.staging import (
    MULTILEVEL_SPEC_DEFAULTS,
    MultiLevelStagePlan,
    Stage,
    StageMatrix,
    build_stage_plan,
    normalize_multilevel_spec,
    stage_plan_for,
)

__all__ = [
    "MULTILEVEL_SPEC_DEFAULTS",
    "MultiLevelMappingResult",
    "MultiLevelStagePlan",
    "Stage",
    "StageMappingOutcome",
    "StageMatrix",
    "build_stage_plan",
    "map_multilevel",
    "normalize_multilevel_spec",
    "run_multilevel_chunk",
    "stage_plan_for",
]
