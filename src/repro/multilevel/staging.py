"""Stage decomposition of a multi-level design for per-stage mapping.

The multi-level crossbar (paper §III) evaluates its NAND network one
gate row at a time, level by level, so the rows of one logic level form
a natural *stage*: the controller's row addressing stays local to a
level, and a mapping problem over one level's rows is much smaller than
one over the whole network (mapping cost grows superlinearly in rows).
The defect-tolerant multi-level pipeline therefore partitions the
physical array into contiguous per-stage **row banks** — one bank per
logic level plus one for the output latches — sharing every vertical
line, and maps each stage's requirement rows onto its own bank with the
unmodified two-level mappers.

Row permutation within a bank is free for the same reason it is free in
the two-level architecture: a gate's fan-in and connection devices live
in *columns* identified by role (input latch, connection, output), so
moving a gate row to another physical row moves its devices with it
without disturbing any other row.  Columns are shared across all banks,
which is why spare-*column* repair happens once on the full array while
spare rows are granted per bank.

A stage's requirement matrix is a genuine
:class:`~repro.mapping.function_matrix.FunctionMatrix`
(:class:`StageMatrix`), with **all** rows in the minterm block: gate
rows and output-latch rows are homogeneous row-placement problems, so
the hybrid mapper's heuristic matcher handles them all and its Munkres
output-assignment stage has nothing left to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.boolean.function import BooleanFunction
from repro.crossbar.multi_level import MultiLevelDesign
from repro.exceptions import ExperimentError, MappingError
from repro.mapping.function_matrix import FunctionMatrix
from repro.synth.tech_map import STRATEGIES, MappingOptions, technology_map

#: Keys a multi-level spec may carry, with their defaults.
MULTILEVEL_SPEC_DEFAULTS = {
    "strategy": "best",
    "max_fanin": None,
    "share_gates": True,
}


def normalize_multilevel_spec(spec) -> dict:
    """Validate a multi-level spec and fill in the defaults.

    A spec is the JSON-safe dict carried by ``options["multilevel"]`` of
    a :class:`~repro.api.scenarios.Scenario` (or passed directly to
    ``run_mapping_monte_carlo(multilevel=...)``): ``strategy`` /
    ``max_fanin`` / ``share_gates``, all optional.  Raises
    :class:`~repro.exceptions.ExperimentError` on unknown keys or bad
    values so a typo fails at spec-construction time, not inside a pool
    worker.
    """
    if spec is None:
        spec = {}
    try:
        items = dict(spec)
    except (TypeError, ValueError):
        raise ExperimentError(
            f"a multi-level spec must be a mapping, got {spec!r}"
        ) from None
    unknown = sorted(set(items) - set(MULTILEVEL_SPEC_DEFAULTS))
    if unknown:
        raise ExperimentError(
            f"unknown multi-level spec keys {unknown}; expected a subset of "
            f"{sorted(MULTILEVEL_SPEC_DEFAULTS)}"
        )
    normalized = {**MULTILEVEL_SPEC_DEFAULTS, **items}
    if normalized["strategy"] not in STRATEGIES:
        raise ExperimentError(
            f"unknown multi-level strategy {normalized['strategy']!r}; "
            f"expected one of {STRATEGIES}"
        )
    max_fanin = normalized["max_fanin"]
    if max_fanin is not None:
        if not isinstance(max_fanin, int) or isinstance(max_fanin, bool):
            raise ExperimentError(
                f"max_fanin must be an integer or None, got {max_fanin!r}"
            )
        if max_fanin < 2:
            raise ExperimentError(f"max_fanin must be at least 2, got {max_fanin}")
    normalized["share_gates"] = bool(normalized["share_gates"])
    return normalized


class StageMatrix(FunctionMatrix):
    """The requirement matrix of one stage, as a first-class FM.

    Built from a row slice of the multi-level layout matrix rather than
    from a :class:`BooleanFunction`; every row sits in the minterm block
    (``num_output_rows == 0``) so the existing mappers treat the stage as
    a homogeneous row-placement problem.
    """

    def __init__(self, matrix: np.ndarray, *, label: str):
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise MappingError(
                f"a stage matrix needs at least one row, got shape {matrix.shape}"
            )
        self._function = None
        self._cover = None
        self._cover_kwargs = {"name": label}
        self._layout = None
        self._matrix = matrix
        self._num_minterm_rows = int(matrix.shape[0])
        self._num_output_rows = 0

    @property
    def function(self) -> BooleanFunction:
        raise MappingError(
            "a StageMatrix has no backing BooleanFunction; it is a row "
            "slice of a multi-level layout"
        )


@dataclass(frozen=True, eq=False)
class Stage:
    """One stage of the plan: a logic level (or the output latches)."""

    index: int
    label: str
    #: Rows of the full layout matrix belonging to this stage (ascending).
    row_indices: tuple[int, ...]
    matrix: StageMatrix = field(repr=False)

    @property
    def num_rows(self) -> int:
        """Rows this stage must place (= its matrix's row count)."""
        return len(self.row_indices)


class MultiLevelStagePlan:
    """The per-stage decomposition of one :class:`MultiLevelDesign`.

    Stages are the network's logic levels in ascending order followed by
    one output-latch stage.  :meth:`bank_bounds` lays the stages out as
    contiguous physical row banks, each padded with ``extra_rows`` spare
    rows — the multi-level counterpart of the two-level redundancy
    parameter.
    """

    def __init__(self, design: MultiLevelDesign):
        self._design = design
        network = design.network
        layout_matrix = np.asarray(design.layout.to_matrix(), dtype=np.uint8)

        levels = network.levels()
        by_level: dict[int, list[int]] = {}
        for position, gate in enumerate(network.gates):
            by_level.setdefault(levels[gate.gate_id], []).append(position)

        stages: list[Stage] = []
        for level in sorted(by_level):
            rows = tuple(sorted(by_level[level]))
            stages.append(
                Stage(
                    index=len(stages),
                    label=f"level-{level}",
                    row_indices=rows,
                    matrix=StageMatrix(
                        layout_matrix[list(rows)], label=f"level-{level}"
                    ),
                )
            )
        gate_count = network.gate_count()
        output_rows = tuple(range(gate_count, gate_count + network.num_outputs))
        stages.append(
            Stage(
                index=len(stages),
                label="outputs",
                row_indices=output_rows,
                matrix=StageMatrix(
                    layout_matrix[list(output_rows)], label="outputs"
                ),
            )
        )
        self._stages = tuple(stages)
        self._num_columns = int(layout_matrix.shape[1])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def design(self) -> MultiLevelDesign:
        """The staged multi-level design."""
        return self._design

    @property
    def network(self):
        """The underlying NAND network."""
        return self._design.network

    @property
    def stages(self) -> tuple[Stage, ...]:
        """All stages, evaluation order (levels ascending, outputs last)."""
        return self._stages

    @property
    def num_stages(self) -> int:
        """Number of stages (logic levels + the output-latch stage)."""
        return len(self._stages)

    @property
    def num_columns(self) -> int:
        """Shared column count of every stage (the full layout width)."""
        return self._num_columns

    @property
    def total_rows(self) -> int:
        """Rows over all stages without redundancy (= layout rows)."""
        return sum(stage.num_rows for stage in self._stages)

    def physical_rows(self, extra_rows: int = 0) -> int:
        """Physical array height with ``extra_rows`` spare rows per bank."""
        if extra_rows < 0:
            raise ExperimentError("extra_rows must be non-negative")
        return self.total_rows + extra_rows * self.num_stages

    def bank_bounds(self, extra_rows: int = 0) -> list[tuple[int, int]]:
        """Per-stage physical row banks ``[lo, hi)``, contiguous in order."""
        if extra_rows < 0:
            raise ExperimentError("extra_rows must be non-negative")
        bounds = []
        offset = 0
        for stage in self._stages:
            height = stage.num_rows + extra_rows
            bounds.append((offset, offset + height))
            offset += height
        return bounds

    def extra_rows_for(self, physical_rows: int) -> int:
        """Recover the per-bank spare-row count from a physical height."""
        spare_total = physical_rows - self.total_rows
        if spare_total < 0 or spare_total % self.num_stages:
            raise ExperimentError(
                f"{physical_rows} physical rows do not split into "
                f"{self.num_stages} banks over {self.total_rows} stage rows"
            )
        return spare_total // self.num_stages

    def describe(self) -> str:
        """One-line human-readable rendering of the stage structure."""
        parts = ", ".join(
            f"{stage.label}:{stage.num_rows}" for stage in self._stages
        )
        return (
            f"{self.num_stages} stages x {self.num_columns} columns "
            f"({parts})"
        )

    def __repr__(self) -> str:
        return f"MultiLevelStagePlan({self.describe()})"


def build_stage_plan(design: MultiLevelDesign) -> MultiLevelStagePlan:
    """Stage an existing multi-level design."""
    return MultiLevelStagePlan(design)


def stage_plan_for(function: BooleanFunction, spec=None) -> MultiLevelStagePlan:
    """Technology-map a function and stage the resulting design.

    ``spec`` is a multi-level spec dict (see
    :func:`normalize_multilevel_spec`); the mapping is deterministic, so
    every Monte-Carlo chunk worker rebuilding the plan from the same
    ``(function, spec)`` pair stages identically.
    """
    spec = normalize_multilevel_spec(spec)
    options = MappingOptions(
        max_fanin=spec["max_fanin"],
        strategy=spec["strategy"],
        share_gates=spec["share_gates"],
    )
    network = technology_map(function, options=options)
    return MultiLevelStagePlan(MultiLevelDesign(network))
