"""Per-stage defect-tolerant mapping of one staged design.

One multi-level sample is mapped stage by stage in evaluation order:
every stage's requirement rows are placed onto its physical row bank by
an unmodified two-level mapper, and the network survives iff **every**
stage maps (and validates).  The walk stops at the first non-surviving
stage — exactly the fold the vectorized engine replicates
(:mod:`repro.multilevel.monte_carlo`), so backtrack counts agree
sample for sample between the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.defects.defect_map import DefectMap
from repro.exceptions import MappingError
from repro.mapping.crossbar_matrix import CrossbarMatrix
from repro.mapping.result import MappingResult
from repro.mapping.validate import validate_assignment
from repro.multilevel.staging import MultiLevelStagePlan


@dataclass
class StageMappingOutcome:
    """One stage's mapping attempt within a multi-level sample."""

    stage_label: str
    #: Physical row bank ``[lo, hi)`` the stage was mapped against.
    bank: tuple[int, int]
    result: MappingResult
    #: False when the mapper succeeded but validation rejected it.
    valid: bool = True

    @property
    def survived(self) -> bool:
        """True when the stage mapped successfully and validated."""
        return self.result.success and self.valid

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "stage_label": self.stage_label,
            "bank": list(self.bank),
            "valid": self.valid,
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageMappingOutcome":
        """Rebuild an outcome serialized by :meth:`to_dict`."""
        return cls(
            stage_label=payload["stage_label"],
            bank=tuple(payload["bank"]),
            valid=payload.get("valid", True),
            result=MappingResult.from_dict(payload["result"]),
        )


@dataclass
class MultiLevelMappingResult:
    """Whole-network outcome of one per-stage mapping walk.

    ``stages`` holds the attempted stages in evaluation order; the walk
    stops at the first failing (or invalid) stage, so a failed result
    may cover fewer stages than the plan has.
    """

    success: bool
    stages: list[StageMappingOutcome] = field(default_factory=list)
    failure_stage: str | None = None
    failure_reason: str | None = None

    @property
    def total_backtracks(self) -> int:
        """Backtracks summed over the attempted stages."""
        return sum(s.result.statistics.backtracks for s in self.stages)

    @property
    def runtime_seconds(self) -> float:
        """Mapper wall-clock summed over the attempted stages."""
        return sum(s.result.runtime_seconds for s in self.stages)

    def stage(self, label: str) -> StageMappingOutcome:
        """The attempted stage with a given label."""
        for outcome in self.stages:
            if outcome.stage_label == label:
                return outcome
        raise MappingError(
            f"no stage {label!r} was attempted; this walk covered "
            f"{[s.stage_label for s in self.stages]}"
        )

    def summary(self) -> str:
        """One-line human-readable rendering."""
        if self.success:
            return (
                f"mapped {len(self.stages)} stages "
                f"({self.total_backtracks} backtracks)"
            )
        return (
            f"failed at stage {self.failure_stage!r} after "
            f"{len(self.stages)} attempts: {self.failure_reason}"
        )

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "success": self.success,
            "failure_stage": self.failure_stage,
            "failure_reason": self.failure_reason,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MultiLevelMappingResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        return cls(
            success=payload["success"],
            failure_stage=payload.get("failure_stage"),
            failure_reason=payload.get("failure_reason"),
            stages=[
                StageMappingOutcome.from_dict(entry)
                for entry in payload.get("stages", [])
            ],
        )


def map_multilevel(
    plan: MultiLevelStagePlan,
    mapper,
    defect_map: DefectMap,
    *,
    extra_rows: int = 0,
    validate: bool = True,
) -> MultiLevelMappingResult:
    """Map one staged design onto one (repaired) physical defect map.

    ``defect_map`` must already cover exactly the plan's column width —
    spare-column repair, when any, happens on the full array *before*
    this call because every bank shares the vertical lines.  Its height
    must equal :meth:`MultiLevelStagePlan.physical_rows` for the given
    per-bank ``extra_rows``.
    """
    if defect_map.columns != plan.num_columns:
        raise MappingError(
            f"defect map has {defect_map.columns} columns but the plan "
            f"needs exactly {plan.num_columns} (repair spares first)"
        )
    expected_rows = plan.physical_rows(extra_rows)
    if defect_map.rows != expected_rows:
        raise MappingError(
            f"defect map has {defect_map.rows} rows but {plan.num_stages} "
            f"banks with {extra_rows} spare rows each need {expected_rows}"
        )

    outcome = MultiLevelMappingResult(success=True)
    for stage, (lo, hi) in zip(plan.stages, plan.bank_bounds(extra_rows)):
        crossbar = CrossbarMatrix(defect_map.restricted_to_rows(lo, hi))
        result = mapper.map(stage.matrix, crossbar)
        valid = True
        if result.success and validate:
            valid = validate_assignment(stage.matrix, crossbar, result)
        outcome.stages.append(
            StageMappingOutcome(
                stage_label=stage.label,
                bank=(lo, hi),
                result=result,
                valid=valid,
            )
        )
        if not result.success:
            outcome.success = False
            outcome.failure_stage = stage.label
            outcome.failure_reason = result.failure_reason
            break
        if not valid:
            outcome.success = False
            outcome.failure_stage = stage.label
            outcome.failure_reason = "mapping failed matrix-level validation"
            break
    return outcome
