"""repro.service — async job orchestration and HTTP service.

The production face of the pipeline (ROADMAP item 1): long Monte-Carlo
campaigns become resumable, shardable *jobs* instead of one blocking
CLI process.  Four pieces:

* :mod:`repro.service.jobs` — shard a scenario into chunk-level jobs
  over disjoint global sample ranges (machine-invariant chunk keys);
* :mod:`repro.service.store` — :class:`CheckpointStore`, atomic
  per-chunk checkpoint files (crash-safe, concurrent-writer-safe);
* :mod:`repro.service.orchestrator` — :class:`Orchestrator`, an asyncio
  supervisor over a process pool that checkpoints every finished chunk
  and resumes interrupted campaigns by executing only the missing ones;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the
  dependency-free HTTP API behind ``python -m repro serve`` and its
  stdlib client.

Like :mod:`repro.api`, attributes resolve lazily (PEP 562) so importing
the package costs nothing until a symbol is used.
"""

from __future__ import annotations

_EXPORTS = {
    # job model
    "ChunkSpec": "repro.service.jobs",
    "ChunkJob": "repro.service.jobs",
    "plan_chunks": "repro.service.jobs",
    "plan_range_chunks": "repro.service.jobs",
    "execute_chunk": "repro.service.jobs",
    "assemble_rows": "repro.service.jobs",
    "merge_mapping_chunks": "repro.service.jobs",
    "default_chunk_size": "repro.service.jobs",
    # checkpoint store
    "CheckpointStore": "repro.service.store",
    # resilience
    "QuarantinedChunk": "repro.service.resilience",
    "classify_failure": "repro.service.resilience",
    "backoff_delay": "repro.service.resilience",
    # orchestrator
    "Job": "repro.service.orchestrator",
    "Orchestrator": "repro.service.orchestrator",
    "JobDrained": "repro.service.orchestrator",
    "ServiceUnavailable": "repro.service.orchestrator",
    # http service
    "ServiceRuntime": "repro.service.http",
    "ServiceServer": "repro.service.http",
    "make_server": "repro.service.http",
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
