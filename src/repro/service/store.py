"""Crash-safe chunk checkpoints: one file per chunk, atomic renames.

The JSONL :class:`~repro.api.artifacts.ArtifactStore` is ideal for
*finished* results — append-only, greppable, one writer per block — but
a campaign that checkpoints every completed chunk from many concurrent
workers needs different guarantees:

* a checkpoint must be **all-or-nothing** (a SIGKILL mid-write may not
  leave a half-record that poisons the resume);
* concurrent writers must never interleave (two orchestrator workers,
  or two whole servers, finishing chunks at the same instant);
* the resume scan must be cheap (list completed chunk keys without
  parsing every payload).

:class:`CheckpointStore` gets all three from the filesystem itself: each
chunk lands in its own file, written to a unique temporary name and
published with :func:`os.replace` — atomic on POSIX, so a reader sees
either the complete payload or nothing, and the last of two identical
concurrent writers wins harmlessly (chunk payload bytes are a pure
function of the spec, the chunk range and the engine).  The directory
listing *is* the index.

Layout (one directory per job, keyed by the scenario content hash)::

    <root>/<spec_hash>/
        spec.json                    # scenario + execution plan metadata
        chunks/<chunk_key>.json      # one completed chunk each
        result.json                  # merged final result (presence = done)
"""

from __future__ import annotations

import json
import os
import uuid
import warnings
from pathlib import Path

from repro import faults

#: File name of the job-level spec/plan metadata.
SPEC_FILE = "spec.json"

#: Suffix a corrupt checkpoint file is renamed to when quarantined —
#: it stops matching the ``.json`` resume index, so the chunk (or spec,
#: or result) is simply recomputed.
CORRUPT_SUFFIX = ".corrupt"

#: File name of the merged final result.
RESULT_FILE = "result.json"

#: Sub-directory holding the per-chunk checkpoint files.
CHUNKS_DIR = "chunks"


def atomic_write_json(path: Path, payload: dict) -> None:
    """Publish ``payload`` at ``path`` via a same-directory atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def read_json(path: Path) -> dict | None:
    """Decode one JSON file; ``None`` when absent (never half-written).

    A file that exists but does not parse is **corrupt** — something
    external tore it (atomic renames rule out our own writers).  It is
    quarantined: renamed aside with :data:`CORRUPT_SUFFIX` so the resume
    index stops counting it, and reported with a :class:`RuntimeWarning`
    naming the quarantined path (mirroring the artifact store's
    truncated-JSONL warning).  The caller then simply recomputes.
    """
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        quarantined = path.with_name(path.name + CORRUPT_SUFFIX)
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = path
        warnings.warn(
            f"quarantined corrupt checkpoint file {quarantined} "
            "(unparseable JSON); its payload will be recomputed",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


class CheckpointStore:
    """Per-chunk campaign checkpoints under one root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def job_dir(self, spec_hash: str) -> Path:
        """The directory holding one job's checkpoints."""
        return self.root / spec_hash

    def chunk_path(self, spec_hash: str, key: str) -> Path:
        """The checkpoint file of one chunk."""
        return self.job_dir(spec_hash) / CHUNKS_DIR / f"{key}.json"

    # ------------------------------------------------------------------
    # Job-level spec and result
    # ------------------------------------------------------------------
    def write_spec(self, spec_hash: str, payload: dict) -> None:
        """Record the job's spec + plan metadata (idempotent)."""
        atomic_write_json(self.job_dir(spec_hash) / SPEC_FILE, payload)

    def read_spec(self, spec_hash: str) -> dict | None:
        """The job's spec payload, or ``None`` for an unknown job."""
        return read_json(self.job_dir(spec_hash) / SPEC_FILE)

    def write_result(self, spec_hash: str, payload: dict) -> None:
        """Publish the merged final result (marks the job complete)."""
        atomic_write_json(self.job_dir(spec_hash) / RESULT_FILE, payload)

    def read_result(self, spec_hash: str) -> dict | None:
        """The merged final result, or ``None`` while incomplete."""
        return read_json(self.job_dir(spec_hash) / RESULT_FILE)

    def jobs(self) -> list[str]:
        """Spec hashes of every job with a recorded spec, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / SPEC_FILE).is_file()
        )

    # ------------------------------------------------------------------
    # Chunks
    # ------------------------------------------------------------------
    def write_chunk(self, spec_hash: str, key: str, payload: dict) -> None:
        """Checkpoint one completed chunk.

        Instrumented with the ``checkpoint.corrupt`` fault point: an
        armed :class:`repro.faults.FaultPlan` makes the write land
        *torn* (truncated JSON), simulating a crash mid-write for the
        chaos suite — the quarantine in :func:`read_json` must recover.
        """
        path = self.chunk_path(spec_hash, key)
        if faults.should_corrupt(key):
            text = json.dumps(payload, sort_keys=True)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
            tmp.write_text(text[: max(1, len(text) // 2)])
            os.replace(tmp, path)
            return
        atomic_write_json(path, payload)

    def read_chunk(self, spec_hash: str, key: str) -> dict | None:
        """One chunk's checkpoint, or ``None`` if it never completed."""
        return read_json(self.chunk_path(spec_hash, key))

    def completed_chunks(self, spec_hash: str) -> set[str]:
        """Keys of every checkpointed chunk (the resume index)."""
        chunks = self.job_dir(spec_hash) / CHUNKS_DIR
        if not chunks.is_dir():
            return set()
        return {
            entry.name[: -len(".json")]
            for entry in chunks.iterdir()
            if entry.name.endswith(".json") and not entry.name.startswith(".")
        }
