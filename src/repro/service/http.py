"""Dependency-free HTTP facade over the orchestrator.

``python -m repro serve`` starts a :class:`ServiceServer` — a stdlib
:class:`~http.server.ThreadingHTTPServer` whose handler threads talk to
one :class:`Orchestrator` running on a dedicated asyncio loop thread
(:class:`ServiceRuntime`).  Handler threads never touch orchestrator
state directly: every operation crosses into the loop via
:func:`asyncio.run_coroutine_threadsafe`, so the orchestrator stays
single-threaded and two clients submitting the same spec race onto the
*same* in-flight job instead of two computations.

Endpoints (all JSON):

========================  =====================================================
``GET  /healthz``          liveness probe
``GET  /v1/jobs``          every job's status snapshot
``POST /v1/jobs``          submit a scenario spec (``Scenario.to_dict`` shape);
                           returns its job status — immediately ``done`` +
                           ``cached`` when the spec is already in a store;
                           ``503`` + ``Retry-After`` while the server drains
``GET  /v1/jobs/<id>``     one job's status
``GET  /v1/jobs/<id>/result``  the full ``ScenarioResult`` payload (409 until
                           the job is done)
``GET  /v1/artifacts/<hash>``  latest complete record for any content hash in
                           the shared JSONL artifact store — scenario results
                           and cached analysis artifacts (yield curves,
                           surfaces, spare searches) alike
========================  =====================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.artifacts import ArtifactStore
from repro.api.scenarios import Scenario
from repro.exceptions import ExperimentError, ReproError
from repro.service.orchestrator import (
    DONE,
    FAILED,
    Orchestrator,
    ServiceUnavailable,
)
from repro.service.store import CheckpointStore

#: Seconds a handler thread waits for a loop-side operation to finish.
CALL_TIMEOUT = 60.0

#: ``Retry-After`` seconds advertised with a 503 while draining — short,
#: because a draining server is typically about to be replaced.
RETRY_AFTER_SECONDS = 1


class ServiceRuntime:
    """Owns the asyncio loop thread the orchestrator lives on."""

    def __init__(
        self,
        checkpoints: CheckpointStore,
        *,
        artifacts: ArtifactStore | None = None,
        workers: int | None = None,
        engine: str = "auto",
        chunk_size: int | None = None,
        chunk_timeout: float | None = None,
        chunk_retries: int = 2,
        retry_delay: float = 0.05,
        partial_policy: str = "fail",
    ):
        self.artifacts = artifacts
        self.orchestrator = Orchestrator(
            checkpoints,
            artifacts=artifacts,
            workers=workers,
            engine=engine,
            chunk_size=chunk_size,
            chunk_timeout=chunk_timeout,
            chunk_retries=chunk_retries,
            retry_delay=retry_delay,
            partial_policy=partial_policy,
        )
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True
        )
        self._started = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> "ServiceRuntime":
        """Start the loop thread (idempotent)."""
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        """Whether the orchestrator refuses new submissions."""
        return self.orchestrator.draining

    def begin_drain(self) -> None:
        """Start refusing submissions (503) without stopping the loop."""
        self.orchestrator.begin_drain()

    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully drain: refuse new work, wait for in-flight chunks.

        Returns ``True`` when every job settled within ``timeout``
        seconds (``None`` = wait indefinitely), ``False`` on deadline —
        either way, every chunk that finished has been checkpointed, so
        a subsequent :meth:`stop` + process exit loses nothing.
        """
        self.begin_drain()
        if not self._started:
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.orchestrator.drain(), self.loop
        )
        try:
            future.result(timeout=timeout)
            return True
        except TimeoutError:
            future.cancel()
            return False

    def stop(self) -> None:
        """Stop the loop thread and release the worker pool."""
        if self._started:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=CALL_TIMEOUT)
            self._started = False
        self.orchestrator.shutdown()

    def _call(self, coroutine):
        """Run one coroutine on the loop thread and wait for its value."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        return future.result(timeout=CALL_TIMEOUT)

    # ------------------------------------------------------------------
    # Thread-safe operations (called from HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Submit a scenario payload; returns the job status snapshot."""
        if not isinstance(payload, dict) or "source" not in payload:
            raise ExperimentError(
                "a job submission must be a scenario object (the "
                "Scenario.to_dict shape, with a 'source' key)"
            )
        scenario = Scenario.from_dict(payload)

        async def _submit() -> dict:
            job = await self.orchestrator.submit(scenario)
            return job.status_payload()

        return self._call(_submit())

    def status(self, job_id: str) -> dict:
        """One job's status snapshot."""

        async def _status() -> dict:
            return self.orchestrator.status(job_id)

        return self._call(_status())

    def jobs(self) -> list[dict]:
        """Every job's status snapshot."""

        async def _jobs() -> list[dict]:
            return self.orchestrator.list_jobs()

        return self._call(_jobs())

    def result(self, job_id: str) -> dict:
        """One finished job's full result payload.

        Raises :class:`ExperimentError` while the job is still running
        or after it failed — the HTTP layer maps that to 409.
        """

        async def _result() -> dict:
            job = self.orchestrator.get(job_id)
            if job.status == FAILED:
                raise ExperimentError(f"job {job_id} failed: {job.error}")
            if job.status != DONE or job.result is None:
                raise ExperimentError(f"job {job_id} is still {job.status}")
            return job.result.to_dict()

        return self._call(_result())

    def artifact(self, spec_hash: str) -> dict:
        """The latest complete artifact-store record for a content hash."""
        if self.artifacts is None:
            raise ExperimentError("this server has no artifact store attached")
        record = self.artifacts.load(spec_hash)
        if record is None:
            raise ExperimentError(f"no complete artifact for hash {spec_hash!r}")
        return {
            "hash": record.spec_hash,
            "spec": record.spec,
            "rows": record.rows,
            "elapsed_seconds": record.elapsed_seconds,
            "workers": record.workers,
        }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table above onto the runtime."""

    #: Cap on accepted request bodies (a scenario spec is a few KB).
    MAX_BODY = 4 * 1024 * 1024

    server: "ServiceServer"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, payload, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_unavailable(self, message: str) -> None:
        """503 + ``Retry-After`` — the draining answer to a submission."""
        self._send_json(
            503,
            {"error": message, "retry_after": RETRY_AFTER_SECONDS},
            headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
        )

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _route(self) -> list[str]:
        return [part for part in self.path.split("?", 1)[0].split("/") if part]

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        runtime = self.server.runtime
        parts = self._route()
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok"})
            elif parts == ["v1", "jobs"]:
                self._send_json(200, {"jobs": runtime.jobs()})
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(200, runtime.status(parts[2]))
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "result"
            ):
                self._send_json(200, runtime.result(parts[2]))
            elif len(parts) == 3 and parts[:2] == ["v1", "artifacts"]:
                self._send_json(200, runtime.artifact(parts[2]))
            else:
                self._send_error(404, f"no such endpoint: {self.path}")
        except ReproError as error:
            message = str(error)
            if "unknown job" in message or "no complete artifact" in message:
                self._send_error(404, message)
            elif "still" in message or "failed" in message:
                self._send_error(409, message)
            else:
                self._send_error(400, message)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        runtime = self.server.runtime
        if self._route() != ["v1", "jobs"]:
            self._send_error(404, f"no such endpoint: {self.path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > self.MAX_BODY:
            self._send_error(400, "submissions need a JSON body")
            return
        if runtime.draining:
            self._send_unavailable("service is draining; retry shortly")
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            self._send_error(400, f"invalid JSON body: {error}")
            return
        try:
            status = runtime.submit(payload)
        except ServiceUnavailable as error:
            # The drain began between the check above and the loop-side
            # submit — same clean 503 either way.
            self._send_unavailable(str(error))
            return
        except ReproError as error:
            self._send_error(400, str(error))
            return
        self._send_json(202 if status["status"] != "done" else 200, status)


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server bound to one :class:`ServiceRuntime`."""

    daemon_threads = True

    def __init__(self, address, runtime: ServiceRuntime, *, verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.runtime = runtime
        self.verbose = verbose


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    checkpoints: CheckpointStore,
    artifacts: ArtifactStore | None = None,
    workers: int | None = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    chunk_timeout: float | None = None,
    chunk_retries: int = 2,
    retry_delay: float = 0.05,
    partial_policy: str = "fail",
    verbose: bool = False,
) -> ServiceServer:
    """Build (and start the runtime of) a service server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``.  The caller owns the serve loop: call
    ``serve_forever()`` (blocking) or drive it from a thread in tests,
    and ``shutdown()`` + ``runtime.stop()`` to tear down; call
    ``runtime.drain()`` first for a graceful (checkpoint-preserving,
    503-answering) exit.
    """
    runtime = ServiceRuntime(
        checkpoints,
        artifacts=artifacts,
        workers=workers,
        engine=engine,
        chunk_size=chunk_size,
        chunk_timeout=chunk_timeout,
        chunk_retries=chunk_retries,
        retry_delay=retry_delay,
        partial_policy=partial_policy,
    ).start()
    return ServiceServer((host, port), runtime, verbose=verbose)
