"""The job model: shard a scenario into resumable chunk-level jobs.

One *job* is one :class:`~repro.api.scenarios.Scenario` (keyed by its
content hash, like everywhere else in the pipeline); its unit of work is
a :class:`ChunkSpec` — a contiguous slice of one result row's global
sample stream.  Chunking rides the same determinism contract as the
batch engine: every sample draws its defect map from
``derive_seed(seed, global_index)``, so executing a chunk in any
process, on any engine, at any time produces the counting statistics of
exactly that slice of an uninterrupted run, and merging the chunks in
range order (:func:`assemble_rows`) reproduces the uninterrupted
statistics bit-for-bit.

Unlike the in-process :class:`~repro.api.batch.BatchRunner`, whose auto
chunk size follows the local CPU count, service chunk plans must be
**machine-invariant**: a campaign checkpointed on an 8-core box has to
resume on a 2-core one with the same chunk keys.
:func:`default_chunk_size` therefore derives the size from the sample
count alone, and the orchestrator records the resolved size in the
job's checkpoint spec so a resume (or an operator override) can never
silently orphan existing checkpoints.

Adaptive (``tolerance``-driven) scenarios cannot be sharded statically
— the sample count is decided by the stopping rule as evidence
accumulates.  They shard *wave by wave* instead: each wave is one batch
of the deterministic geometric schedule of
:func:`repro.analysis.adaptive.run_adaptive_monte_carlo`, itself split
into chunk jobs (:func:`plan_range_chunks`).  Because the stopping rule
reads counting statistics only, a resumed campaign replays the same
schedule, loads the checkpointed waves and stops at the same sample
count an uninterrupted run would have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.api.batch import chunk_ranges
from repro.api.scenarios import Scenario
from repro.exceptions import ExperimentError
from repro.experiments.monte_carlo import VECTORIZED_MIN_CHUNK, MonteCarloResult

#: Target number of chunks per result row under the default chunk size —
#: small enough to amortise per-chunk setup, large enough that a killed
#: campaign loses little work.
DEFAULT_CHUNKS_PER_ROW = 16


def default_chunk_size(samples: int) -> int:
    """Machine-invariant default chunk size for ``samples`` per row.

    Aims at :data:`DEFAULT_CHUNKS_PER_ROW` chunks, floored at the
    vectorized engine's amortisation minimum — deliberately *not* a
    function of the local worker count (see the module docstring).
    """
    if samples <= 0:
        raise ExperimentError(f"samples must be positive, got {samples}")
    return max(
        min(VECTORIZED_MIN_CHUNK, samples),
        math.ceil(samples / DEFAULT_CHUNKS_PER_ROW),
    )


@dataclass(frozen=True, order=True)
class ChunkSpec:
    """One shard: result row ``row_index``, global samples ``[start, stop)``."""

    row_index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.row_index < 0:
            raise ExperimentError(
                f"row_index must be non-negative, got {self.row_index}"
            )
        if not 0 <= self.start < self.stop:
            raise ExperimentError(
                f"chunk needs 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    @property
    def key(self) -> str:
        """Filesystem-safe checkpoint key (sorts in range order)."""
        return f"r{self.row_index:03d}_s{self.start:010d}_e{self.stop:010d}"

    @property
    def size(self) -> int:
        """Number of samples the chunk covers."""
        return self.stop - self.start


def plan_range_chunks(
    row_index: int, start: int, stop: int, chunk_size: int
) -> list[ChunkSpec]:
    """Shard the global sample range ``[start, stop)`` of one row."""
    return [
        ChunkSpec(row_index, start + span.start, start + span.stop)
        for span in chunk_ranges(stop - start, chunk_size)
    ]


def plan_chunks(scenario: Scenario, chunk_size: int) -> list[ChunkSpec]:
    """The full static chunk plan of a fixed-budget scenario.

    Mapping scenarios shard every redundancy row's ``[0, samples)``
    stream; area scenarios shard their single row (a non-random source
    has exactly one sample to evaluate).  Adaptive scenarios have no
    static plan — the orchestrator plans them wave by wave.
    """
    if scenario.tolerance is not None:
        raise ExperimentError(
            f"scenario {scenario.name!r} is adaptive; its chunks are "
            "planned wave by wave, not statically"
        )
    if scenario.protocol == "area":
        samples = scenario.samples if scenario.source.kind == "random" else 1
        return plan_range_chunks(0, 0, samples, chunk_size)
    return [
        chunk
        for row_index in range(len(scenario.redundancy))
        for chunk in plan_range_chunks(row_index, 0, scenario.samples, chunk_size)
    ]


@dataclass(frozen=True)
class ChunkJob:
    """Picklable work unit: one chunk of one scenario, on one engine.

    ``attempt`` counts retries of this chunk (0 on first dispatch).  It
    never affects the computed statistics — chunk payloads are a pure
    function of ``(spec, range, engine)`` — but it does drive the
    deterministic fault-injection hooks, which fire on the first
    ``times`` attempts of a matching chunk (worker processes hold no
    state, so the attempt number must travel with the job).
    """

    spec_hash: str
    scenario_payload: dict
    chunk: ChunkSpec
    engine: str = "vectorized"
    attempt: int = 0


def execute_chunk(job: ChunkJob) -> dict:
    """Execute one chunk job; a pure function of the job (picklable).

    Returns the JSON-safe checkpoint payload: ``{"protocol": "mapping",
    "monte_carlo": ...}`` or ``{"protocol": "area", "rows": [...]}``.
    Runs serially inside the calling process — the orchestrator's pool
    provides the parallelism across chunks.

    Instrumented with the worker-side fault points (``chunk.slow``,
    ``worker.hang``, ``worker.crash``) of :mod:`repro.faults`; with no
    plan armed the hooks are a dictionary miss each.
    """
    from repro import faults

    faults.trip("chunk.slow", key=job.chunk.key, attempt=job.attempt)
    faults.trip("worker.hang", key=job.chunk.key, attempt=job.attempt)
    faults.trip("worker.crash", key=job.chunk.key, attempt=job.attempt)
    scenario = Scenario.from_dict(job.scenario_payload)
    chunk = job.chunk
    if scenario.protocol == "area":
        return {"protocol": "area", "rows": _execute_area_chunk(scenario, job)}
    from repro.experiments.monte_carlo import run_mapping_monte_carlo

    extra_rows, extra_columns = scenario.redundancy[chunk.row_index]
    monte_carlo = run_mapping_monte_carlo(
        scenario.source.build(seed=scenario.seed),
        defect_model=scenario.resolved_defect_model(),
        sample_size=chunk.size,
        sample_offset=chunk.start,
        algorithms=scenario.mappers,
        seed=scenario.seed,
        extra_rows=extra_rows,
        extra_columns=extra_columns,
        validate=scenario.options.get("validate", True),
        workers=1,
        chunk_size=chunk.size,
        engine=job.engine,
        multilevel=scenario.multilevel_spec(),
    )
    return {"protocol": "mapping", "monte_carlo": monte_carlo.to_dict()}


def _execute_area_chunk(scenario: Scenario, job: ChunkJob) -> list[dict]:
    """Area-protocol chunk: reuse the runner's chunk executor."""
    from repro.api.runner import (
        _area_boolean_engine,
        _AreaChunkTask,
        _run_area_chunk,
    )

    boolean_engine = _area_boolean_engine(job.engine)
    if scenario.source.kind != "random":
        from repro.experiments.figure6 import evaluate_sample

        sample = evaluate_sample(
            scenario.source.build(seed=scenario.seed),
            minimize_before_synthesis=scenario.options.get(
                "minimize_before_synthesis", True
            ),
            engine=boolean_engine,
        )
        return [
            {
                "index": 0,
                "num_products": sample.num_products,
                "two_level_cost": sample.two_level_cost,
                "multi_level_cost": sample.multi_level_cost,
                "gate_count": sample.gate_count,
            }
        ]
    return _run_area_chunk(
        _AreaChunkTask(
            source=scenario.source,
            seed=scenario.seed,
            start=job.chunk.start,
            stop=job.chunk.stop,
            minimize_before_synthesis=scenario.options.get(
                "minimize_before_synthesis", True
            ),
            engine=boolean_engine,
        )
    )


def merge_mapping_chunks(payloads: list[dict]) -> MonteCarloResult:
    """Merge one row's chunk payloads (in range order) into one result.

    :meth:`MonteCarloResult.merge` enforces matching experiments and
    disjoint global sample ranges, so a stale checkpoint from a
    different plan fails loudly instead of double-counting.
    """
    if not payloads:
        raise ExperimentError("cannot merge an empty chunk list")
    merged = MonteCarloResult.from_dict(payloads[0]["monte_carlo"])
    for payload in payloads[1:]:
        merged.merge(MonteCarloResult.from_dict(payload["monte_carlo"]))
    return merged


def assemble_rows(
    scenario: Scenario,
    plan: list[ChunkSpec],
    payloads: dict[ChunkSpec, dict],
    *,
    allow_missing: bool = False,
) -> list[dict]:
    """Assemble the final result rows from a complete static chunk plan.

    Produces exactly the row shapes of
    :class:`~repro.api.runner.ScenarioResult` so service results,
    CLI-run results and cached artifacts stay interchangeable.

    With ``allow_missing=True`` (the orchestrator's ``"partial"``
    quarantine policy) absent chunks are tolerated: mapping rows merge
    whatever ranges survived (the merged result's ``sample_ranges``
    provenance names the gaps), area rows simply omit the lost sample
    indices.  A redundancy row with *no* surviving chunk still raises —
    there is no meaningful partial statistic for an empty row.
    """
    missing = [chunk.key for chunk in plan if chunk not in payloads]
    if missing and not allow_missing:
        raise ExperimentError(
            f"cannot assemble {scenario.name!r}: missing chunks {missing}"
        )
    if scenario.protocol == "area":
        rows = [
            row
            for chunk in sorted(plan)
            if chunk in payloads
            for row in payloads[chunk]["rows"]
        ]
        return sorted(rows, key=lambda row: row["index"])
    rows = []
    for row_index, (extra_rows, extra_columns) in enumerate(scenario.redundancy):
        row_chunks = sorted(
            c for c in plan if c.row_index == row_index and c in payloads
        )
        if not row_chunks:
            raise ExperimentError(
                f"cannot assemble {scenario.name!r}: every chunk of "
                f"redundancy row {row_index} was lost or quarantined"
            )
        merged = merge_mapping_chunks([payloads[c] for c in row_chunks])
        rows.append(
            {
                "redundancy": [extra_rows, extra_columns],
                "monte_carlo": merged.to_dict(),
            }
        )
    return rows
