"""Failure taxonomy, deterministic backoff and chunk quarantine.

The orchestrator's retry loop (:mod:`repro.service.orchestrator`) is
built from three small, separately testable pieces kept here:

* :func:`classify_failure` — the retry taxonomy.  *Transient* failures
  (a worker process dying, a broken pool, an OS-level error, a chunk
  timeout) are environmental: the chunk itself is fine and a retry on a
  healthy worker is expected to succeed.  *Deterministic* failures
  (:class:`~repro.exceptions.ReproError` and any other in-library
  exception) are properties of the chunk/spec — retrying replays the
  same pure function and fails identically, so the chunk is quarantined
  immediately instead of burning retries.
* :func:`backoff_delay` — exponential backoff whose jitter is **seeded**
  from ``(scenario seed, chunk key, attempt)`` via
  :func:`~repro.api.seeding.derive_seed`, so a rerun of a faulted
  campaign sleeps the exact same schedule (the chaos suite's
  determinism contract covers the scheduler, not just the statistics).
* :class:`QuarantinedChunk` — the record of a poisoned chunk: its
  sample range, how many attempts were spent, and the final error.
  Under the ``"partial"`` policy these land on the job payload so a
  client can see exactly which global sample ranges are missing from a
  partial result.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

from repro.api.seeding import derive_seed
from repro.exceptions import ReproError
from repro.service.jobs import ChunkSpec

#: Classification labels returned by :func:`classify_failure`.
TRANSIENT, DETERMINISTIC = "transient", "deterministic"

#: Exception types whose cause is environmental, not the chunk itself.
#: ``BrokenExecutor`` covers ``BrokenProcessPool``; ``OSError`` covers
#: injected worker crashes (:class:`repro.faults.FaultInjected`) and
#: real resource failures; ``TimeoutError`` covers per-chunk deadline
#: expiry (``asyncio.TimeoutError`` is the same type on 3.11+).
TRANSIENT_TYPES = (BrokenExecutor, OSError, TimeoutError)


def classify_failure(error: BaseException) -> str:
    """Classify a chunk failure as :data:`TRANSIENT` or :data:`DETERMINISTIC`.

    :class:`ReproError` wins over the transient types: an experiment
    configured inconsistently stays deterministic even if some subclass
    ever mixes in an OS error.
    """
    if isinstance(error, ReproError):
        return DETERMINISTIC
    if isinstance(error, TRANSIENT_TYPES):
        return TRANSIENT
    return DETERMINISTIC


def backoff_delay(
    seed: int,
    chunk_key: str,
    attempt: int,
    *,
    base: float,
    cap: float = 5.0,
) -> float:
    """Deterministic exponential backoff with seeded jitter.

    ``base * 2**attempt`` scaled by a jitter factor in ``[0.5, 1.5)``
    derived from ``(seed, chunk_key, attempt)`` — different chunks (and
    different attempts) de-synchronise, identical reruns reproduce the
    same schedule.  Clamped to ``cap`` seconds.
    """
    if base <= 0:
        return 0.0
    jitter = derive_seed(seed, "retry-jitter", chunk_key, attempt) / float(1 << 63)
    return min(base * (2.0**attempt) * (0.5 + jitter), cap)


@dataclass(frozen=True)
class QuarantinedChunk:
    """A chunk abandoned after exhausting its failure budget."""

    chunk: ChunkSpec
    attempts: int
    error: str

    def to_dict(self) -> dict:
        """JSON-safe record carried on the job's status payload."""
        return {
            "row_index": self.chunk.row_index,
            "start": self.chunk.start,
            "stop": self.chunk.stop,
            "key": self.chunk.key,
            "attempts": self.attempts,
            "error": self.error,
        }
