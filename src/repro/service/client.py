"""Minimal stdlib client for the ``repro serve`` HTTP API.

Used by the CI smoke test and the test-suite; handy interactively too::

    from repro.service.client import ServiceClient
    client = ServiceClient("http://127.0.0.1:8750")
    status = client.submit(scenario)
    status = client.wait(status["job_id"])
    result = client.result(status["job_id"])    # a ScenarioResult
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.api.runner import ScenarioResult
from repro.api.scenarios import Scenario
from repro.exceptions import ExperimentError


class ServiceError(ExperimentError):
    """An HTTP error answer from the service, with its status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one ``repro serve`` instance over HTTP.

    Every request runs under ``timeout`` seconds and is retried with
    exponential backoff on the two failure shapes a well-behaved client
    must absorb: ``503`` (the server is draining for a restart; its
    ``Retry-After`` header, when present, overrides the backoff) and
    connection-level errors (the server is briefly down between drain
    and restart).  Retrying submissions is safe — jobs are keyed by
    content hash, so a duplicate ``POST`` lands on the same job.
    ``retries=0`` restores fail-fast behaviour for tests.
    """

    #: HTTP statuses worth retrying (the server said "come back").
    RETRYABLE_STATUS = frozenset({503})

    #: Upper bound on one backoff sleep, seconds.
    MAX_BACKOFF = 5.0

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.25,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    def _delay(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            return min(retry_after, self.MAX_BACKOFF)
        return min(self.backoff * (2.0**attempt), self.MAX_BACKOFF)

    def _request(self, path: str, body: dict | None = None) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=None if body is None else json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="GET" if body is None else "POST",
        )
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as answer:
                    return json.loads(answer.read())
            except urllib.error.HTTPError as error:
                try:
                    message = json.loads(error.read()).get("error", str(error))
                except (json.JSONDecodeError, OSError):
                    message = str(error)
                if error.code in self.RETRYABLE_STATUS and attempt < self.retries:
                    try:
                        retry_after = float(error.headers.get("Retry-After"))
                    except (TypeError, ValueError):
                        retry_after = None
                    time.sleep(self._delay(attempt, retry_after))
                    continue
                raise ServiceError(error.code, message) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
                if attempt < self.retries:
                    time.sleep(self._delay(attempt, None))
                    continue
                raise ServiceError(
                    0, f"cannot reach {self.base_url}: {error}"
                ) from None
        raise AssertionError("unreachable")  # loop always returns or raises

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def submit(self, scenario: Scenario | dict) -> dict:
        """``POST /v1/jobs``: submit a scenario, returns its status."""
        payload = (
            scenario.to_dict() if isinstance(scenario, Scenario) else scenario
        )
        return self._request("/v1/jobs", body=payload)

    def jobs(self) -> list[dict]:
        """``GET /v1/jobs``: every job's status."""
        return self._request("/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``: one job's status."""
        return self._request(f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> ScenarioResult:
        """``GET /v1/jobs/<id>/result`` as a :class:`ScenarioResult`."""
        return ScenarioResult.from_dict(self._request(f"/v1/jobs/{job_id}/result"))

    def artifact(self, spec_hash: str) -> dict:
        """``GET /v1/artifacts/<hash>``: a cached artifact record."""
        return self._request(f"/v1/artifacts/{spec_hash}")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Poll one job until it is done (or raise on failure/timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] == "done":
                return status
            if status["status"] == "failed":
                raise ExperimentError(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ExperimentError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll)
