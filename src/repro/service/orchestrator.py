"""Async job orchestration: supervise chunk jobs, checkpoint, resume.

:class:`Orchestrator` is an asyncio supervisor over a process pool.  A
submitted :class:`~repro.api.scenarios.Scenario` becomes a
:class:`Job` keyed by its content hash; the job's chunk plan
(:mod:`repro.service.jobs`) fans out across the pool, and **every
completed chunk is checkpointed** into a
:class:`~repro.service.store.CheckpointStore` the moment it finishes.
Supervision is cheap — chunks execute in worker processes, so one
event loop can juggle many campaigns and HTTP clients concurrently.

Crash/resume semantics
----------------------
Kill the orchestrator at any instant and no state is lost beyond the
chunks in flight: checkpoints are atomic files, so a restarted
orchestrator re-plans the same (machine-invariant) chunk keys, loads
the finished ones and executes **only the missing ones**.  The merged
statistics are bit-for-bit those of an uninterrupted run, because every
chunk is a pure function of ``(spec, global sample range, engine)`` and
:meth:`MonteCarloResult.merge` reassembles disjoint ranges exactly.

Cache sharing
-------------
Completed jobs publish their result twice: into the checkpoint store
(``result.json``, the resume fast-path) and — when an
:class:`~repro.api.artifacts.ArtifactStore` is attached — as one atomic
JSONL block, so CLI runs, other servers and future submissions of the
same spec all hit the same warm cache.  Concurrent submissions of one
spec dedup onto a single in-flight job.

Fault tolerance
---------------
Chunk execution survives the failures the mapper survives in silicon
(see ``docs/architecture.md`` → *Failure model*):

* each dispatch runs under an optional **per-chunk timeout**;
* failures are **classified** (:mod:`repro.service.resilience`):
  transient ones (worker death, broken pool, OS errors, timeouts) are
  retried with seeded exponential backoff — the jitter derives from the
  chunk key, so reruns sleep the same schedule — while deterministic
  ones (:class:`~repro.exceptions.ReproError`) are quarantined at once;
* a broken process pool is **rebuilt** (generation-guarded, so many
  chunks poisoned by one dead worker trigger a single rebuild);
* a chunk that exhausts its budget is **quarantined**: under the
  default ``partial_policy="fail"`` the job fails naming the chunk,
  under ``"partial"`` the job completes with the surviving ranges and
  the quarantined sample ranges recorded on its status payload (a
  partial result is *never* written to ``result.json`` or the artifact
  store, so resubmitting retries exactly the quarantined chunks);
* :meth:`Orchestrator.drain` stops dispatching new chunks while letting
  in-flight ones finish and checkpoint — an interrupted job parks in
  the ``drained`` state and resumes bit-for-bit on resubmission.
"""

from __future__ import annotations

import asyncio
import math
import time
import warnings
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field

from repro.api.artifacts import ArtifactStore
from repro.api.batch import _noop, auto_workers
from repro.api.runner import ScenarioResult
from repro.api.scenarios import Scenario
from repro.engines import canonical_engine
from repro.exceptions import ExperimentError
from repro.service.jobs import (
    ChunkJob,
    ChunkSpec,
    default_chunk_size,
    execute_chunk,
    merge_mapping_chunks,
    plan_chunks,
    plan_range_chunks,
    assemble_rows,
)
from repro.service.resilience import (
    DETERMINISTIC,
    QuarantinedChunk,
    backoff_delay,
    classify_failure,
)
from repro.service.store import CheckpointStore

#: Job lifecycle states.  ``drained`` is terminal for the job object but
#: not for the campaign: its checkpoints are intact and a resubmission
#: (typically to a fresh server) resumes from them.
QUEUED, RUNNING, DONE, FAILED, DRAINED = (
    "queued",
    "running",
    "done",
    "failed",
    "drained",
)


class JobDrained(ExperimentError):
    """A job was interrupted by a graceful drain before completion."""


class ServiceUnavailable(ExperimentError):
    """The orchestrator is draining and refuses new submissions.

    The HTTP layer maps this to ``503`` + ``Retry-After``.
    """


@dataclass
class Job:
    """One submitted scenario's lifecycle state."""

    job_id: str
    scenario: Scenario
    status: str = QUEUED
    cached: bool = False
    total_chunks: int = 0
    loaded_chunks: int = 0
    executed_chunks: int = 0
    error: str | None = None
    retries: int = 0
    quarantined: list[QuarantinedChunk] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    result: ScenarioResult | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def completed_chunks(self) -> int:
        """Chunks accounted for so far (checkpoint-loaded + executed)."""
        return self.loaded_chunks + self.executed_chunks

    @property
    def partial(self) -> bool:
        """Whether the result (if any) is missing quarantined ranges."""
        return bool(self.quarantined)

    def status_payload(self) -> dict:
        """JSON-safe status snapshot (the HTTP ``status`` body)."""
        return {
            "job_id": self.job_id,
            "name": self.scenario.name,
            "protocol": self.scenario.protocol,
            "status": self.status,
            "cached": self.cached,
            "total_chunks": self.total_chunks,
            "completed_chunks": self.completed_chunks,
            "loaded_chunks": self.loaded_chunks,
            "executed_chunks": self.executed_chunks,
            "retries": self.retries,
            "partial": self.partial,
            "quarantined": [entry.to_dict() for entry in self.quarantined],
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class Orchestrator:
    """Asyncio supervisor executing chunk jobs on a process pool.

    Parameters
    ----------
    checkpoints:
        Chunk-level checkpoint store (the resume substrate).
    artifacts:
        Optional shared JSONL artifact store: complete results are
        published there as atomic blocks, and a submission whose spec
        already has a complete artifact is answered from it without
        computing anything.
    workers:
        Pool size (``None`` = the machine's CPU count).  Sandboxes
        without process-spawn rights degrade to a thread pool — slower,
        identical statistics.
    engine / chunk_size:
        Execution defaults recorded into each job's checkpoint spec;
        resumed jobs always reuse the recorded values so their chunk
        keys (and engine-tagged chunk payloads) keep matching.
    chunk_timeout:
        Per-chunk wall-clock deadline in seconds (``None`` = no
        deadline).  A timed-out dispatch counts as a transient failure:
        the abandoned worker's eventual result is discarded and the
        chunk is retried on a fresh slot.
    chunk_retries:
        Extra dispatches granted to a transiently failing chunk (total
        attempts = ``chunk_retries + 1``).  Deterministic failures
        never retry.
    retry_delay:
        Base of the seeded exponential backoff between retries, in
        seconds (``0`` disables the sleep, e.g. for tests).
    partial_policy:
        What a quarantined chunk does to its job: ``"fail"`` (default)
        fails the whole job naming the chunk; ``"partial"`` completes
        the job from the surviving chunks and records the quarantined
        sample ranges on the job payload.  Partial results are never
        cached, so resubmission retries exactly the missing ranges.
    """

    #: Upper bound on one backoff sleep, seconds.
    MAX_RETRY_DELAY = 5.0

    def __init__(
        self,
        checkpoints: CheckpointStore,
        *,
        artifacts: ArtifactStore | None = None,
        workers: int | None = None,
        engine: str = "auto",
        chunk_size: int | None = None,
        chunk_timeout: float | None = None,
        chunk_retries: int = 2,
        retry_delay: float = 0.05,
        partial_policy: str = "fail",
    ):
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be >= 1 or None, got {workers}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ExperimentError(
                f"chunk_timeout must be positive or None, got {chunk_timeout}"
            )
        if chunk_retries < 0:
            raise ExperimentError(
                f"chunk_retries must be >= 0, got {chunk_retries}"
            )
        if partial_policy not in ("fail", "partial"):
            raise ExperimentError(
                f"partial_policy must be 'fail' or 'partial', got "
                f"{partial_policy!r}"
            )
        self.checkpoints = checkpoints
        self.artifacts = artifacts
        self.workers = workers
        # The canonical name is what gets persisted into job specs; an
        # ``"auto"`` job resolves per executing machine, which is safe
        # because cross-engine partials merge (engine="mixed").
        self.engine = canonical_engine(engine)
        self.chunk_size = chunk_size
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.retry_delay = retry_delay
        self.partial_policy = partial_policy
        self.jobs: dict[str, Job] = {}
        self._executor = None
        self._executor_workers = 0
        self._generation = 0
        self._draining = False
        self._gate: asyncio.Semaphore | None = None
        self._gate_loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # Executor management
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        workers = self.workers if self.workers is not None else auto_workers()
        if workers > 1:
            executor = None
            try:
                executor = ProcessPoolExecutor(max_workers=workers)
                # Probe spawn rights exactly like BatchRunner: fall back
                # to threads where process pools are unavailable.
                executor.submit(_noop).result()
                self._executor = executor
                self._executor_workers = workers
                return executor
            except (OSError, BrokenExecutor):
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ThreadPoolExecutor(max_workers=workers)
        self._executor_workers = workers
        return self._executor

    def _retire_executor(self, generation: int) -> None:
        """Discard the executor ``generation`` was dispatched on.

        Generation-guarded: when one dead worker poisons every pending
        future of a process pool, each affected chunk calls in here but
        only the first replaces the pool — the rest see a newer
        generation and reuse the rebuilt executor on retry.  The old
        pool is abandoned without waiting (its surviving queued futures
        still complete and deliver; a genuinely hung worker keeps its
        process until its task ends, but no new work lands on it).
        """
        if generation != self._generation or self._executor is None:
            return
        self._generation += 1
        self._executor.shutdown(wait=False)
        self._executor = None

    def _dispatch_gate(self) -> asyncio.Semaphore:
        """Semaphore sized to the pool, recreated per event loop.

        Dispatching at most ``workers`` chunks at a time keeps the
        executor queue empty, which makes per-chunk timeouts measure
        *execution* (not queue wait) and lets a drain cut off the
        chunks that have not started yet.
        """
        loop = asyncio.get_running_loop()
        if self._gate is None or self._gate_loop is not loop:
            self._ensure_executor()
            self._gate = asyncio.Semaphore(max(self._executor_workers, 1))
            self._gate_loop = loop
        return self._gate

    def shutdown(self) -> None:
        """Release the worker pool (idempotent).

        Waits for the pool to wind down — a process pool abandoned with
        ``wait=False`` races the interpreter's atexit hooks and spews
        ``Exception ignored`` noise on clean server exits.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether a graceful drain has begun (new submissions refused)."""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new submissions and stop dispatching new chunks.

        In-flight chunk dispatches finish and checkpoint; jobs cut off
        mid-campaign settle in the ``drained`` state.  Safe to call
        from any thread (a one-way bool flip).
        """
        self._draining = True

    async def drain(self) -> None:
        """Begin draining and wait until every job settles.

        After this returns, every in-flight chunk has either finished
        (and checkpointed) or never started, so a process exit loses no
        completed work.
        """
        self.begin_drain()
        pending = [
            job.done.wait()
            for job in self.jobs.values()
            if not job.done.is_set()
        ]
        if pending:
            await asyncio.gather(*pending)

    async def submit(self, scenario: Scenario) -> Job:
        """Submit a scenario; concurrent identical submissions share one job.

        Returns immediately with the (possibly pre-existing) job;
        :meth:`wait` awaits its completion.  A job that previously
        failed, was drained, or completed only partially (quarantined
        chunks under ``partial_policy="partial"``) is retried by
        resubmission; a healthy in-flight or completed job is shared.
        """
        if self._draining:
            raise ServiceUnavailable(
                "the orchestrator is draining; resubmit after restart"
            )
        job_id = scenario.content_hash()
        existing = self.jobs.get(job_id)
        if existing is not None:
            retryable = existing.done.is_set() and (
                existing.status in (FAILED, DRAINED) or existing.partial
            )
            if not retryable:
                return existing
        job = Job(job_id=job_id, scenario=scenario)
        self.jobs[job_id] = job
        asyncio.create_task(self._run_job(job))
        return job

    async def wait(self, job_id: str) -> Job:
        """Await one job's completion (done or failed)."""
        job = self.get(job_id)
        await job.done.wait()
        return job

    def get(self, job_id: str) -> Job:
        """Look up one job."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """One job's status snapshot."""
        return self.get(job_id).status_payload()

    def list_jobs(self) -> list[dict]:
        """Status snapshots of every job, oldest first."""
        return [
            job.status_payload()
            for job in sorted(self.jobs.values(), key=lambda j: j.submitted_at)
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        started = time.perf_counter()
        try:
            result = self._cached_result(job)
            if result is None:
                rows = await self._execute(job)
                result = ScenarioResult(
                    scenario=job.scenario,
                    spec_hash=job.job_id,
                    rows=rows,
                    elapsed_seconds=time.perf_counter() - started,
                    workers=self._executor_workers or 1,
                )
                if not job.partial:
                    # A partial result (quarantined ranges) is served
                    # but never cached: result.json / the artifact
                    # store only ever hold complete statistics, and a
                    # resubmission re-executes exactly the gaps.
                    self.checkpoints.write_result(job.job_id, result.to_dict())
                    if self.artifacts is not None:
                        self.artifacts.write_block(
                            job.job_id,
                            job.scenario.to_dict(),
                            result.rows,
                            elapsed_seconds=result.elapsed_seconds,
                            workers=result.workers,
                        )
            job.result = result
            job.status = DONE
        except asyncio.CancelledError:
            raise
        except JobDrained as error:
            job.error = str(error)
            job.status = DRAINED
        except Exception as error:  # surfaced through the job, not the loop
            job.error = f"{type(error).__name__}: {error}"
            job.status = FAILED
        finally:
            job.finished_at = time.time()
            job.done.set()

    def _cached_result(self, job: Job) -> ScenarioResult | None:
        """A previously completed result for this spec, if any exists."""
        payload = self.checkpoints.read_result(job.job_id)
        if payload is not None:
            result = ScenarioResult.from_dict(payload)
            result.cached = True
            job.cached = True
            return result
        if self.artifacts is not None:
            record = self.artifacts.load(job.job_id)
            if record is not None:
                job.cached = True
                return ScenarioResult.from_record(record)
        return None

    def _job_plan_settings(self, job: Job) -> tuple[int, str]:
        """Resolve (and persist) the job's chunk size and engine.

        A resumed job must re-derive the chunk keys and engine of its
        existing checkpoints, so the values recorded at first submission
        always win over the orchestrator's current defaults.

        A ``spec.json`` that parses but lacks a usable plan (a legacy
        or externally damaged file) must not brick the job forever: the
        plan is regenerated and rewritten with a warning.  Checkpoints
        keyed under a *different* lost chunk size are simply not found
        by the new plan and re-execute — correctness is untouched, the
        statistics are a pure function of the spec and ranges.
        """
        scenario = job.scenario
        stored = self.checkpoints.read_spec(job.job_id)
        if stored is not None:
            chunk_size = stored.get("chunk_size")
            engine = stored.get("engine")
            if (
                isinstance(chunk_size, int)
                and chunk_size >= 1
                and isinstance(engine, str)
            ):
                return chunk_size, engine
            warnings.warn(
                f"checkpoint spec.json of job {job.job_id} is corrupt or "
                "legacy (missing chunk_size/engine); regenerating the "
                "execution plan — checkpoints under unknown chunk keys "
                "will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
        samples = scenario.samples
        if scenario.protocol == "area" and scenario.source.kind != "random":
            samples = 1  # a fixed function is evaluated exactly once
        chunk_size = self.chunk_size or default_chunk_size(samples)
        self.checkpoints.write_spec(
            job.job_id,
            {
                "scenario": scenario.to_dict(),
                "spec_hash": job.job_id,
                "chunk_size": chunk_size,
                "engine": self.engine,
            },
        )
        return chunk_size, self.engine

    async def _execute(self, job: Job) -> list[dict]:
        chunk_size, engine = self._job_plan_settings(job)
        if job.scenario.tolerance is not None:
            return await self._execute_adaptive(job, chunk_size, engine)
        plan = plan_chunks(job.scenario, chunk_size)
        job.total_chunks = len(plan)
        payloads = await self._run_wave(job, plan, engine)
        return assemble_rows(
            job.scenario, plan, payloads, allow_missing=job.partial
        )

    async def _run_wave(
        self, job: Job, plan: list[ChunkSpec], engine: str
    ) -> dict[ChunkSpec, dict]:
        """Run one set of chunks concurrently, loading checkpoints first.

        Every chunk runs to its own conclusion — completed siblings of
        a failing chunk are checkpointed, never cancelled with orphaned
        executor futures (``gather(return_exceptions=True)``), so a
        failed or drained wave loses only the work that actually
        failed.  Quarantined chunks (``partial_policy="partial"``) are
        simply absent from the returned payload map.
        """
        scenario_payload = job.scenario.to_dict()

        async def run_one(chunk: ChunkSpec) -> tuple[ChunkSpec, dict | None]:
            payload = self.checkpoints.read_chunk(job.job_id, chunk.key)
            if payload is not None:
                job.loaded_chunks += 1
                return chunk, payload
            async with self._dispatch_gate():
                outcome = await self._run_chunk_with_retries(
                    job, chunk, engine, scenario_payload
                )
            if isinstance(outcome, QuarantinedChunk):
                if self.partial_policy == "fail":
                    raise ExperimentError(
                        f"chunk {chunk.key} of job {job.job_id} is "
                        f"quarantined after {outcome.attempts} attempt(s): "
                        f"{outcome.error}"
                    )
                job.quarantined.append(outcome)
                return chunk, None
            self.checkpoints.write_chunk(job.job_id, chunk.key, outcome)
            job.executed_chunks += 1
            return chunk, outcome

        results = await asyncio.gather(
            *(run_one(chunk) for chunk in plan), return_exceptions=True
        )
        payloads: dict[ChunkSpec, dict] = {}
        drained: JobDrained | None = None
        failure: BaseException | None = None
        for item in results:
            if isinstance(item, JobDrained):
                drained = drained or item
            elif isinstance(item, BaseException):
                failure = failure or item
            else:
                chunk, payload = item
                if payload is not None:
                    payloads[chunk] = payload
        if failure is not None:
            raise failure
        if drained is not None:
            raise drained
        return payloads

    async def _run_chunk_with_retries(
        self,
        job: Job,
        chunk: ChunkSpec,
        engine: str,
        scenario_payload: dict,
    ) -> dict | QuarantinedChunk:
        """One chunk's dispatch loop: timeout, classify, back off, retry.

        Returns the chunk payload on success or a
        :class:`QuarantinedChunk` once the failure budget is spent (or
        immediately for a deterministic failure).  Transient failures
        on a broken/timed-out executor retire it (generation-guarded)
        so the retry lands on a healthy pool.
        """
        loop = asyncio.get_running_loop()
        attempts = self.chunk_retries + 1
        last_error: BaseException | None = None
        for attempt in range(attempts):
            if self._draining:
                raise JobDrained(
                    f"job {job.job_id} drained before chunk {chunk.key} "
                    "was dispatched"
                )
            executor = self._ensure_executor()
            generation = self._generation
            chunk_job = ChunkJob(
                spec_hash=job.job_id,
                scenario_payload=scenario_payload,
                chunk=chunk,
                engine=engine,
                attempt=attempt,
            )
            try:
                future = loop.run_in_executor(executor, execute_chunk, chunk_job)
                if self.chunk_timeout is not None:
                    payload = await asyncio.wait_for(future, self.chunk_timeout)
                else:
                    payload = await future
                return payload
            except asyncio.CancelledError:
                raise
            except TimeoutError as error:
                # The abandoned dispatch may still occupy a worker;
                # retire the pool so the retry gets a fresh slot.
                last_error = error
                self._retire_executor(generation)
            except Exception as error:
                if classify_failure(error) == DETERMINISTIC:
                    return QuarantinedChunk(
                        chunk=chunk,
                        attempts=attempt + 1,
                        error=f"{type(error).__name__}: {error}",
                    )
                last_error = error
                if isinstance(error, BrokenExecutor):
                    self._retire_executor(generation)
            if attempt + 1 < attempts:
                job.retries += 1
                delay = backoff_delay(
                    job.scenario.seed,
                    chunk.key,
                    attempt,
                    base=self.retry_delay,
                    cap=self.MAX_RETRY_DELAY,
                )
                if delay > 0:
                    await asyncio.sleep(delay)
        reason = (
            f"{type(last_error).__name__}: {last_error}"
            if last_error is not None
            else "unknown failure"
        )
        if isinstance(last_error, TimeoutError) and not str(last_error):
            reason = (
                f"TimeoutError: chunk exceeded the {self.chunk_timeout}s "
                "per-chunk timeout"
            )
        return QuarantinedChunk(chunk=chunk, attempts=attempts, error=reason)

    async def _execute_adaptive(
        self, job: Job, chunk_size: int, engine: str
    ) -> list[dict]:
        """Wave-by-wave adaptive sharding (see :mod:`repro.service.jobs`).

        Replays the deterministic geometric batch schedule of
        :func:`repro.analysis.adaptive.run_adaptive_monte_carlo` with
        each batch sharded across the pool, stopping at exactly the
        sample count the in-process sampler would choose — the stopping
        rule reads counting statistics only, which are invariant to the
        sharding.
        """
        from repro.analysis.adaptive import (
            DEFAULT_INITIAL_BATCH,
            DEFAULT_MAX_BATCH,
            DEFAULT_MIN_SAMPLES,
        )
        from repro.analysis.confidence import yield_estimate

        scenario = job.scenario
        tolerance = scenario.tolerance
        confidence = scenario.options.get("confidence", 0.95)
        method = scenario.options.get("ci_method", "wilson")
        max_samples = scenario.samples
        min_samples = min(DEFAULT_MIN_SAMPLES, max_samples)
        rows = []
        for row_index, (extra_rows, extra_columns) in enumerate(
            scenario.redundancy
        ):
            merged = None
            batches = []
            converged = False
            offset, batch = 0, DEFAULT_INITIAL_BATCH
            while offset < max_samples:
                size = min(batch, max_samples - offset)
                wave = plan_range_chunks(
                    row_index, offset, offset + size, chunk_size
                )
                job.total_chunks += len(wave)
                payloads = await self._run_wave(job, wave, engine)
                if job.quarantined:
                    # The stopping rule reads the statistics, so a gap
                    # would change the sample schedule itself: adaptive
                    # campaigns cannot serve partial results.
                    raise ExperimentError(
                        f"adaptive job {job.job_id} cannot tolerate "
                        "quarantined chunks "
                        f"({[q.chunk.key for q in job.quarantined]}); "
                        "the stopping rule needs every batch's statistics"
                    )
                partial = merge_mapping_chunks(
                    [payloads[chunk] for chunk in sorted(wave)]
                )
                if merged is None:
                    merged = partial
                else:
                    merged.merge(partial)
                offset += size
                half_widths = {
                    name: yield_estimate(
                        outcome.successes,
                        outcome.samples,
                        confidence=confidence,
                        method=method,
                    ).half_width
                    for name, outcome in merged.outcomes.items()
                }
                batches.append(
                    {"offset": offset - size, "size": size,
                     "half_widths": half_widths}
                )
                if offset >= min_samples and max(half_widths.values()) <= tolerance:
                    converged = True
                    break
                batch = min(math.ceil(batch * 2.0), DEFAULT_MAX_BATCH)
            estimates = {
                name: yield_estimate(
                    outcome.successes,
                    outcome.samples,
                    confidence=confidence,
                    method=method,
                )
                for name, outcome in merged.outcomes.items()
            }
            rows.append(
                {
                    "redundancy": [extra_rows, extra_columns],
                    "monte_carlo": merged.to_dict(),
                    "adaptive": {
                        "tolerance": tolerance,
                        "confidence": confidence,
                        "method": method,
                        "converged": converged,
                        "samples_used": merged.sample_size,
                        "batches": len(batches),
                        "half_width": max(
                            estimate.half_width for estimate in estimates.values()
                        ),
                        "estimates": {
                            name: estimate.to_dict()
                            for name, estimate in estimates.items()
                        },
                    },
                }
            )
        return rows
