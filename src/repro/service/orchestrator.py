"""Async job orchestration: supervise chunk jobs, checkpoint, resume.

:class:`Orchestrator` is an asyncio supervisor over a process pool.  A
submitted :class:`~repro.api.scenarios.Scenario` becomes a
:class:`Job` keyed by its content hash; the job's chunk plan
(:mod:`repro.service.jobs`) fans out across the pool, and **every
completed chunk is checkpointed** into a
:class:`~repro.service.store.CheckpointStore` the moment it finishes.
Supervision is cheap — chunks execute in worker processes, so one
event loop can juggle many campaigns and HTTP clients concurrently.

Crash/resume semantics
----------------------
Kill the orchestrator at any instant and no state is lost beyond the
chunks in flight: checkpoints are atomic files, so a restarted
orchestrator re-plans the same (machine-invariant) chunk keys, loads
the finished ones and executes **only the missing ones**.  The merged
statistics are bit-for-bit those of an uninterrupted run, because every
chunk is a pure function of ``(spec, global sample range, engine)`` and
:meth:`MonteCarloResult.merge` reassembles disjoint ranges exactly.

Cache sharing
-------------
Completed jobs publish their result twice: into the checkpoint store
(``result.json``, the resume fast-path) and — when an
:class:`~repro.api.artifacts.ArtifactStore` is attached — as one atomic
JSONL block, so CLI runs, other servers and future submissions of the
same spec all hit the same warm cache.  Concurrent submissions of one
spec dedup onto a single in-flight job.
"""

from __future__ import annotations

import asyncio
import math
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field

from repro.api.artifacts import ArtifactStore
from repro.api.batch import _noop, auto_workers
from repro.api.runner import ScenarioResult
from repro.api.scenarios import Scenario
from repro.engines import canonical_engine
from repro.exceptions import ExperimentError
from repro.service.jobs import (
    ChunkJob,
    ChunkSpec,
    default_chunk_size,
    execute_chunk,
    merge_mapping_chunks,
    plan_chunks,
    plan_range_chunks,
    assemble_rows,
)
from repro.service.store import CheckpointStore

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Job:
    """One submitted scenario's lifecycle state."""

    job_id: str
    scenario: Scenario
    status: str = QUEUED
    cached: bool = False
    total_chunks: int = 0
    loaded_chunks: int = 0
    executed_chunks: int = 0
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    result: ScenarioResult | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def completed_chunks(self) -> int:
        """Chunks accounted for so far (checkpoint-loaded + executed)."""
        return self.loaded_chunks + self.executed_chunks

    def status_payload(self) -> dict:
        """JSON-safe status snapshot (the HTTP ``status`` body)."""
        return {
            "job_id": self.job_id,
            "name": self.scenario.name,
            "protocol": self.scenario.protocol,
            "status": self.status,
            "cached": self.cached,
            "total_chunks": self.total_chunks,
            "completed_chunks": self.completed_chunks,
            "loaded_chunks": self.loaded_chunks,
            "executed_chunks": self.executed_chunks,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class Orchestrator:
    """Asyncio supervisor executing chunk jobs on a process pool.

    Parameters
    ----------
    checkpoints:
        Chunk-level checkpoint store (the resume substrate).
    artifacts:
        Optional shared JSONL artifact store: complete results are
        published there as atomic blocks, and a submission whose spec
        already has a complete artifact is answered from it without
        computing anything.
    workers:
        Pool size (``None`` = the machine's CPU count).  Sandboxes
        without process-spawn rights degrade to a thread pool — slower,
        identical statistics.
    engine / chunk_size:
        Execution defaults recorded into each job's checkpoint spec;
        resumed jobs always reuse the recorded values so their chunk
        keys (and engine-tagged chunk payloads) keep matching.
    """

    def __init__(
        self,
        checkpoints: CheckpointStore,
        *,
        artifacts: ArtifactStore | None = None,
        workers: int | None = None,
        engine: str = "auto",
        chunk_size: int | None = None,
    ):
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be >= 1 or None, got {workers}")
        self.checkpoints = checkpoints
        self.artifacts = artifacts
        self.workers = workers
        # The canonical name is what gets persisted into job specs; an
        # ``"auto"`` job resolves per executing machine, which is safe
        # because cross-engine partials merge (engine="mixed").
        self.engine = canonical_engine(engine)
        self.chunk_size = chunk_size
        self.jobs: dict[str, Job] = {}
        self._executor = None
        self._executor_workers = 0

    # ------------------------------------------------------------------
    # Executor management
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        workers = self.workers if self.workers is not None else auto_workers()
        if workers > 1:
            executor = None
            try:
                executor = ProcessPoolExecutor(max_workers=workers)
                # Probe spawn rights exactly like BatchRunner: fall back
                # to threads where process pools are unavailable.
                executor.submit(_noop).result()
                self._executor = executor
                self._executor_workers = workers
                return executor
            except (OSError, BrokenExecutor):
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ThreadPoolExecutor(max_workers=workers)
        self._executor_workers = workers
        return self._executor

    def shutdown(self) -> None:
        """Release the worker pool (idempotent).

        Waits for the pool to wind down — a process pool abandoned with
        ``wait=False`` races the interpreter's atexit hooks and spews
        ``Exception ignored`` noise on clean server exits.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    async def submit(self, scenario: Scenario) -> Job:
        """Submit a scenario; concurrent identical submissions share one job.

        Returns immediately with the (possibly pre-existing) job;
        :meth:`wait` awaits its completion.  A job that previously
        *failed* is retried by resubmission.
        """
        job_id = scenario.content_hash()
        existing = self.jobs.get(job_id)
        if existing is not None and existing.status != FAILED:
            return existing
        job = Job(job_id=job_id, scenario=scenario)
        self.jobs[job_id] = job
        asyncio.create_task(self._run_job(job))
        return job

    async def wait(self, job_id: str) -> Job:
        """Await one job's completion (done or failed)."""
        job = self.get(job_id)
        await job.done.wait()
        return job

    def get(self, job_id: str) -> Job:
        """Look up one job."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """One job's status snapshot."""
        return self.get(job_id).status_payload()

    def list_jobs(self) -> list[dict]:
        """Status snapshots of every job, oldest first."""
        return [
            job.status_payload()
            for job in sorted(self.jobs.values(), key=lambda j: j.submitted_at)
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        started = time.perf_counter()
        try:
            result = self._cached_result(job)
            if result is None:
                rows = await self._execute(job)
                result = ScenarioResult(
                    scenario=job.scenario,
                    spec_hash=job.job_id,
                    rows=rows,
                    elapsed_seconds=time.perf_counter() - started,
                    workers=self._executor_workers or 1,
                )
                self.checkpoints.write_result(job.job_id, result.to_dict())
                if self.artifacts is not None:
                    self.artifacts.write_block(
                        job.job_id,
                        job.scenario.to_dict(),
                        result.rows,
                        elapsed_seconds=result.elapsed_seconds,
                        workers=result.workers,
                    )
            job.result = result
            job.status = DONE
        except asyncio.CancelledError:
            raise
        except Exception as error:  # surfaced through the job, not the loop
            job.error = f"{type(error).__name__}: {error}"
            job.status = FAILED
        finally:
            job.finished_at = time.time()
            job.done.set()

    def _cached_result(self, job: Job) -> ScenarioResult | None:
        """A previously completed result for this spec, if any exists."""
        payload = self.checkpoints.read_result(job.job_id)
        if payload is not None:
            result = ScenarioResult.from_dict(payload)
            result.cached = True
            job.cached = True
            return result
        if self.artifacts is not None:
            record = self.artifacts.load(job.job_id)
            if record is not None:
                job.cached = True
                return ScenarioResult.from_record(record)
        return None

    def _job_plan_settings(self, job: Job) -> tuple[int, str]:
        """Resolve (and persist) the job's chunk size and engine.

        A resumed job must re-derive the chunk keys and engine of its
        existing checkpoints, so the values recorded at first submission
        always win over the orchestrator's current defaults.
        """
        scenario = job.scenario
        stored = self.checkpoints.read_spec(job.job_id)
        if stored is not None:
            return stored["chunk_size"], stored["engine"]
        samples = scenario.samples
        if scenario.protocol == "area" and scenario.source.kind != "random":
            samples = 1  # a fixed function is evaluated exactly once
        chunk_size = self.chunk_size or default_chunk_size(samples)
        self.checkpoints.write_spec(
            job.job_id,
            {
                "scenario": scenario.to_dict(),
                "spec_hash": job.job_id,
                "chunk_size": chunk_size,
                "engine": self.engine,
            },
        )
        return chunk_size, self.engine

    async def _execute(self, job: Job) -> list[dict]:
        chunk_size, engine = self._job_plan_settings(job)
        if job.scenario.tolerance is not None:
            return await self._execute_adaptive(job, chunk_size, engine)
        plan = plan_chunks(job.scenario, chunk_size)
        job.total_chunks = len(plan)
        payloads = await self._run_wave(job, plan, engine)
        return assemble_rows(job.scenario, plan, payloads)

    async def _run_wave(
        self, job: Job, plan: list[ChunkSpec], engine: str
    ) -> dict[ChunkSpec, dict]:
        """Run one set of chunks concurrently, loading checkpoints first."""
        loop = asyncio.get_running_loop()
        scenario_payload = job.scenario.to_dict()

        async def run_one(chunk: ChunkSpec) -> tuple[ChunkSpec, dict]:
            payload = self.checkpoints.read_chunk(job.job_id, chunk.key)
            if payload is not None:
                job.loaded_chunks += 1
                return chunk, payload
            payload = await loop.run_in_executor(
                self._ensure_executor(),
                execute_chunk,
                ChunkJob(
                    spec_hash=job.job_id,
                    scenario_payload=scenario_payload,
                    chunk=chunk,
                    engine=engine,
                ),
            )
            self.checkpoints.write_chunk(job.job_id, chunk.key, payload)
            job.executed_chunks += 1
            return chunk, payload

        results = await asyncio.gather(*(run_one(chunk) for chunk in plan))
        return dict(results)

    async def _execute_adaptive(
        self, job: Job, chunk_size: int, engine: str
    ) -> list[dict]:
        """Wave-by-wave adaptive sharding (see :mod:`repro.service.jobs`).

        Replays the deterministic geometric batch schedule of
        :func:`repro.analysis.adaptive.run_adaptive_monte_carlo` with
        each batch sharded across the pool, stopping at exactly the
        sample count the in-process sampler would choose — the stopping
        rule reads counting statistics only, which are invariant to the
        sharding.
        """
        from repro.analysis.adaptive import (
            DEFAULT_INITIAL_BATCH,
            DEFAULT_MAX_BATCH,
            DEFAULT_MIN_SAMPLES,
        )
        from repro.analysis.confidence import yield_estimate

        scenario = job.scenario
        tolerance = scenario.tolerance
        confidence = scenario.options.get("confidence", 0.95)
        method = scenario.options.get("ci_method", "wilson")
        max_samples = scenario.samples
        min_samples = min(DEFAULT_MIN_SAMPLES, max_samples)
        rows = []
        for row_index, (extra_rows, extra_columns) in enumerate(
            scenario.redundancy
        ):
            merged = None
            batches = []
            converged = False
            offset, batch = 0, DEFAULT_INITIAL_BATCH
            while offset < max_samples:
                size = min(batch, max_samples - offset)
                wave = plan_range_chunks(
                    row_index, offset, offset + size, chunk_size
                )
                job.total_chunks += len(wave)
                payloads = await self._run_wave(job, wave, engine)
                partial = merge_mapping_chunks(
                    [payloads[chunk] for chunk in sorted(wave)]
                )
                if merged is None:
                    merged = partial
                else:
                    merged.merge(partial)
                offset += size
                half_widths = {
                    name: yield_estimate(
                        outcome.successes,
                        outcome.samples,
                        confidence=confidence,
                        method=method,
                    ).half_width
                    for name, outcome in merged.outcomes.items()
                }
                batches.append(
                    {"offset": offset - size, "size": size,
                     "half_widths": half_widths}
                )
                if offset >= min_samples and max(half_widths.values()) <= tolerance:
                    converged = True
                    break
                batch = min(math.ceil(batch * 2.0), DEFAULT_MAX_BATCH)
            estimates = {
                name: yield_estimate(
                    outcome.successes,
                    outcome.samples,
                    confidence=confidence,
                    method=method,
                )
                for name, outcome in merged.outcomes.items()
            }
            rows.append(
                {
                    "redundancy": [extra_rows, extra_columns],
                    "monte_carlo": merged.to_dict(),
                    "adaptive": {
                        "tolerance": tolerance,
                        "confidence": confidence,
                        "method": method,
                        "converged": converged,
                        "samples_used": merged.sample_size,
                        "batches": len(batches),
                        "half_width": max(
                            estimate.half_width for estimate in estimates.values()
                        ),
                        "estimates": {
                            name: estimate.to_dict()
                            for name, estimate in estimates.items()
                        },
                    },
                }
            )
        return rows
