"""Signal references used by the NAND network representation.

Two kinds of signals can drive a NAND gate input on the multi-level
crossbar of the paper:

* a *literal* — one of the primary inputs in either polarity.  Both
  polarities are free because the crossbar's input latch stores ``x`` and
  ``x̄`` side by side (Fig. 3/5 of the paper);
* a *gate reference* — the result of a previously evaluated NAND row,
  copied to a multi-level connection column during the CR phase.  Gate
  outputs are only available in NAND polarity; inverting one costs an
  explicit single-input NAND gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SynthesisError


@dataclass(frozen=True, order=True)
class Literal:
    """A primary-input literal: input index plus polarity.

    ``polarity`` is True for the uncomplemented input ``x`` and False for
    ``x̄``.
    """

    input_index: int
    polarity: bool = True

    def __post_init__(self) -> None:
        if self.input_index < 0:
            raise SynthesisError("literal input index must be non-negative")

    def inverted(self) -> "Literal":
        """The same input with opposite polarity (free on the crossbar)."""
        return Literal(self.input_index, not self.polarity)

    def evaluate(self, assignment) -> bool:
        """Value of the literal under a complete input assignment."""
        value = bool(assignment[self.input_index])
        return value if self.polarity else not value

    def label(self, input_names=None) -> str:
        """Readable name such as ``x3`` or ``~x3``."""
        name = (
            input_names[self.input_index]
            if input_names is not None
            else f"x{self.input_index + 1}"
        )
        return name if self.polarity else f"~{name}"


@dataclass(frozen=True, order=True)
class GateRef:
    """Reference to the output of another NAND gate in the network."""

    gate_id: int

    def __post_init__(self) -> None:
        if self.gate_id < 0:
            raise SynthesisError("gate id must be non-negative")

    def label(self, input_names=None) -> str:
        """Readable name such as ``g4``."""
        return f"g{self.gate_id}"


#: Union type of the two signal kinds.
Signal = Literal | GateRef


def is_literal(signal: Signal) -> bool:
    """True when ``signal`` is a primary-input literal."""
    return isinstance(signal, Literal)


def is_gate(signal: Signal) -> bool:
    """True when ``signal`` refers to another gate."""
    return isinstance(signal, GateRef)


def signal_sort_key(signal: Signal) -> tuple:
    """Deterministic ordering key mixing literals and gate references."""
    if isinstance(signal, Literal):
        return (0, signal.input_index, not signal.polarity)
    return (1, signal.gate_id, 0)
