"""Multi-level NAND synthesis substrate (the library's stand-in for ABC).

The paper obtains its multi-level designs by forcing Berkeley ABC to a
NAND library with fan-in 2…n; this subpackage provides an equivalent,
pure-Python pipeline: quick factoring of the two-level cover, fan-in
bounded NAND decomposition, structural gate sharing, and crossbar-area
estimation of the resulting network.
"""

from repro.synth.area import (
    MultiLevelAreaReport,
    compare_networks,
    multilevel_area,
    multilevel_area_report,
)
from repro.synth.decompose import (
    add_wide_and,
    add_wide_nand,
    invert_signal,
    map_cover_factored,
    map_cover_two_level_nand,
    map_factor_tree,
)
from repro.synth.factoring import (
    FactorAnd,
    FactorLiteral,
    FactorNode,
    FactorOr,
    cube_to_factor,
    factor_tree_literals,
    factored_expression,
    quick_factor,
)
from repro.synth.network import NandGate, NandNetwork, OutputSpec
from repro.synth.signals import GateRef, Literal, Signal, is_gate, is_literal
from repro.synth.tech_map import (
    STRATEGIES,
    MappingOptions,
    best_network,
    map_all_strategies,
    technology_map,
    verify_network,
)

__all__ = [
    "Literal",
    "GateRef",
    "Signal",
    "is_literal",
    "is_gate",
    "NandGate",
    "NandNetwork",
    "OutputSpec",
    "FactorLiteral",
    "FactorAnd",
    "FactorOr",
    "FactorNode",
    "quick_factor",
    "cube_to_factor",
    "factor_tree_literals",
    "factored_expression",
    "add_wide_nand",
    "add_wide_and",
    "invert_signal",
    "map_cover_two_level_nand",
    "map_cover_factored",
    "map_factor_tree",
    "MappingOptions",
    "technology_map",
    "map_all_strategies",
    "best_network",
    "verify_network",
    "STRATEGIES",
    "MultiLevelAreaReport",
    "multilevel_area",
    "multilevel_area_report",
    "compare_networks",
]
