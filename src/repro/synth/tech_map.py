"""Technology mapping: Boolean functions → fan-in-bounded NAND networks.

This is the library's stand-in for the paper's use of Berkeley ABC with a
forced NAND library.  For every output the mapper tries both the direct
NAND–NAND decomposition and the quick-factored form, keeps whichever
produces the smaller multi-level crossbar, and shares structurally
identical gates across outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolean.function import BooleanFunction
from repro.exceptions import SynthesisError
from repro.synth.area import multilevel_area
from repro.synth.decompose import map_cover_factored, map_cover_two_level_nand
from repro.synth.network import NandNetwork

#: Mapping strategies accepted by :func:`technology_map`.
STRATEGIES = ("two_level_nand", "factored", "best")


@dataclass(frozen=True)
class MappingOptions:
    """Options controlling NAND technology mapping.

    Attributes
    ----------
    max_fanin:
        Largest NAND fan-in allowed.  ``None`` follows the paper and uses
        the function's input count.
    strategy:
        ``"two_level_nand"`` for the direct NAND–NAND structure,
        ``"factored"`` for quick-factoring, ``"best"`` to pick the smaller
        of the two per function.
    share_gates:
        Whether structurally identical gates are merged across outputs.
    """

    max_fanin: int | None = None
    strategy: str = "best"
    share_gates: bool = True

    def resolved_max_fanin(self, num_inputs: int) -> int:
        """The effective fan-in bound (≥ 2)."""
        if self.max_fanin is not None:
            if self.max_fanin < 2:
                raise SynthesisError("max_fanin must be at least 2")
            return self.max_fanin
        return max(2, num_inputs)


def technology_map(
    function: BooleanFunction,
    *,
    options: MappingOptions | None = None,
) -> NandNetwork:
    """Map a Boolean function onto a NAND network.

    The returned network computes exactly the same outputs as ``function``
    (the test-suite verifies this exhaustively for small functions and by
    sampling for wide ones).
    """
    options = options or MappingOptions()
    if options.strategy not in STRATEGIES:
        raise SynthesisError(
            f"unknown strategy {options.strategy!r}; expected one of {STRATEGIES}"
        )
    if options.strategy == "best":
        candidates = [
            _map_with_strategy(function, "two_level_nand", options),
            _map_with_strategy(function, "factored", options),
        ]
        return min(candidates, key=lambda n: (multilevel_area(n), n.gate_count()))
    return _map_with_strategy(function, options.strategy, options)


def _map_with_strategy(
    function: BooleanFunction, strategy: str, options: MappingOptions
) -> NandNetwork:
    network = NandNetwork(function.input_names, name=function.name)
    max_fanin = options.resolved_max_fanin(function.num_inputs)
    for index, output_name in enumerate(function.output_names):
        cover = function.cover_for_output(index)
        if strategy == "two_level_nand":
            map_cover_two_level_nand(
                network, cover, output_name, max_fanin=max_fanin
            )
        else:
            map_cover_factored(network, cover, output_name, max_fanin=max_fanin)
    return network


def map_all_strategies(
    function: BooleanFunction, *, max_fanin: int | None = None
) -> dict[str, NandNetwork]:
    """Map a function with every strategy; useful for ablation studies."""
    results = {}
    for strategy in ("two_level_nand", "factored"):
        options = MappingOptions(max_fanin=max_fanin, strategy=strategy)
        results[strategy] = technology_map(function, options=options)
    return results


def best_network(
    function: BooleanFunction, *, max_fanin: int | None = None
) -> NandNetwork:
    """Shorthand for the ``"best"`` strategy."""
    options = MappingOptions(max_fanin=max_fanin, strategy="best")
    return technology_map(function, options=options)


def verify_network(
    function: BooleanFunction,
    network: NandNetwork,
    *,
    exhaustive_limit: int = 12,
    samples: int = 512,
) -> bool:
    """Check that a network computes the function (exhaustive or sampled)."""
    from repro.boolean.truth_table import functions_agree

    if tuple(network.output_names) != tuple(function.output_names):
        return False
    return functions_agree(
        function,
        network.evaluate,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
    )
