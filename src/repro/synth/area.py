"""Crossbar-area estimation for NAND networks (multi-level designs).

The multi-level crossbar of the paper devotes one horizontal line to each
NAND gate plus one per output latch row, and its vertical lines are the
two-polarity input latch, one *multi-level connection* column per gate
whose result is consumed by a later gate, and the ``f`` / ``f̄`` column
pair per output.  This module computes that area (and the corresponding
inclusion ratio) from a :class:`~repro.synth.network.NandNetwork` without
materialising the full layout — the experiments sweep thousands of random
networks, so the closed-form evaluation matters.

The full layout constructor in :mod:`repro.crossbar.multi_level` uses the
same accounting; a cross-check between the two is part of the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.network import NandNetwork
from repro.synth.signals import GateRef, Literal


@dataclass(frozen=True)
class MultiLevelAreaReport:
    """Breakdown of a multi-level crossbar's size.

    Attributes mirror the quantities discussed in §III of the paper.
    """

    rows: int
    columns: int
    gate_rows: int
    output_rows: int
    input_columns: int
    connection_columns: int
    output_columns: int
    active_devices: int
    num_levels: int

    @property
    def area(self) -> int:
        """Total crossbar area (rows × columns)."""
        return self.rows * self.columns

    @property
    def inclusion_ratio(self) -> float:
        """Fraction of crosspoints carrying an active (programmable) device."""
        if self.area == 0:
            return 0.0
        return self.active_devices / self.area


def multilevel_area_report(network: NandNetwork) -> MultiLevelAreaReport:
    """Compute the area breakdown of the multi-level design for a network."""
    num_inputs = network.num_inputs
    num_outputs = network.num_outputs
    gate_rows = network.gate_count()
    output_rows = num_outputs

    internal = network.internal_gate_ids()
    connection_columns = len(internal)

    rows = gate_rows + output_rows
    input_columns = 2 * num_inputs
    output_columns = 2 * num_outputs
    columns = input_columns + connection_columns + output_columns

    # Active devices: one per gate fan-in (literal fan-ins sit in the input
    # latch columns, gate fan-ins in the connection columns), one per
    # gate-output copy into its connection column, one per output-driver
    # connection, and the f / f̄ pair per output latch row.
    active = network.total_fanin_connections()
    active += len(internal)
    for output in network.outputs:
        if isinstance(output.driver, (GateRef, Literal)):
            active += 1
    active += 2 * num_outputs

    return MultiLevelAreaReport(
        rows=rows,
        columns=columns,
        gate_rows=gate_rows,
        output_rows=output_rows,
        input_columns=input_columns,
        connection_columns=connection_columns,
        output_columns=output_columns,
        active_devices=active,
        num_levels=network.depth(),
    )


def multilevel_area(network: NandNetwork) -> int:
    """Total multi-level crossbar area for a NAND network."""
    return multilevel_area_report(network).area


def compare_networks(*networks: NandNetwork) -> NandNetwork:
    """Return the network with the smallest multi-level crossbar area.

    Ties are broken towards fewer gates, then fewer logic levels, so the
    choice is deterministic.
    """
    if not networks:
        raise ValueError("compare_networks needs at least one network")
    return min(
        networks,
        key=lambda n: (multilevel_area(n), n.gate_count(), n.depth()),
    )
