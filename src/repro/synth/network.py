"""NAND-gate network: the multi-level representation mapped onto crossbars.

The paper's multi-level design evaluates NAND gates one per horizontal
line, one at a time, feeding earlier results into later rows through
*multi-level connection* columns.  :class:`NandNetwork` is the
technology-mapped netlist that the :mod:`repro.crossbar.multi_level`
module turns into such a layout:

* every gate is an n-input NAND whose fan-ins are primary-input literals
  (either polarity, free) or outputs of earlier gates;
* the network is a DAG; gates are stored in a valid topological order
  (fan-ins always precede the gate);
* each primary output is driven by one gate and may be taken in either
  polarity (the crossbar's output latch produces both ``f`` and ``f̄``,
  so a final inversion is free — the same observation the paper uses for
  its dual-mapping optimisation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import SynthesisError
from repro.synth.signals import GateRef, Literal, Signal, is_gate, signal_sort_key


@dataclass(frozen=True)
class NandGate:
    """A single NAND gate: output = NOT(AND of all fan-ins)."""

    gate_id: int
    fanins: tuple[Signal, ...]

    def __post_init__(self) -> None:
        if not self.fanins:
            raise SynthesisError("a NAND gate needs at least one fan-in")
        for signal in self.fanins:
            if is_gate(signal) and signal.gate_id >= self.gate_id:
                raise SynthesisError(
                    f"gate {self.gate_id} references gate {signal.gate_id} that is "
                    "not earlier in topological order"
                )

    @property
    def fanin_count(self) -> int:
        """Number of fan-ins (the crossbar row's device count)."""
        return len(self.fanins)

    def is_inverter(self) -> bool:
        """True for a single-input NAND (a plain inverter)."""
        return len(self.fanins) == 1


@dataclass(frozen=True)
class OutputSpec:
    """How a primary output is produced from the network."""

    name: str
    driver: Signal
    invert: bool = False


class NandNetwork:
    """A technology-mapped NAND network over named inputs and outputs."""

    def __init__(self, input_names: Sequence[str], name: str = ""):
        self._input_names = tuple(str(n) for n in input_names)
        self._name = str(name)
        self._gates: list[NandGate] = []
        self._outputs: list[OutputSpec] = []
        self._structural_hash: dict[frozenset, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, fanins: Iterable[Signal], *, share: bool = True) -> GateRef:
        """Append a NAND gate and return a reference to it.

        Duplicate fan-ins are collapsed (NAND is idempotent in repeated
        inputs) and structurally identical gates are shared when ``share``
        is true.
        """
        unique = []
        seen = set()
        for signal in fanins:
            self._validate_signal(signal)
            if signal in seen:
                continue
            seen.add(signal)
            unique.append(signal)
        if not unique:
            raise SynthesisError("cannot create a NAND gate with no fan-ins")
        unique.sort(key=signal_sort_key)
        key = frozenset(unique)
        if share and key in self._structural_hash:
            return GateRef(self._structural_hash[key])
        gate_id = len(self._gates)
        self._gates.append(NandGate(gate_id, tuple(unique)))
        if share:
            self._structural_hash[key] = gate_id
        return GateRef(gate_id)

    def add_inverter(self, signal: Signal) -> GateRef:
        """Add a single-input NAND implementing NOT(signal)."""
        if isinstance(signal, Literal):
            raise SynthesisError(
                "inverting a literal is free; use Literal.inverted() instead"
            )
        return self.add_gate([signal])

    def add_output(self, name: str, driver: Signal, *, invert: bool = False) -> None:
        """Declare a primary output driven by ``driver`` (optionally inverted).

        A literal driver is allowed (an output that is just a wire or an
        input complement).
        """
        self._validate_signal(driver)
        if any(out.name == name for out in self._outputs):
            raise SynthesisError(f"duplicate output name {name!r}")
        self._outputs.append(OutputSpec(name, driver, invert))

    def _validate_signal(self, signal: Signal) -> None:
        if isinstance(signal, Literal):
            if signal.input_index >= len(self._input_names):
                raise SynthesisError(
                    f"literal references input {signal.input_index}, network has "
                    f"{len(self._input_names)} inputs"
                )
        elif isinstance(signal, GateRef):
            if signal.gate_id >= len(self._gates):
                raise SynthesisError(
                    f"signal references gate {signal.gate_id}, network has "
                    f"{len(self._gates)} gates"
                )
        else:
            raise SynthesisError(f"unknown signal type {type(signal)!r}")

    # ------------------------------------------------------------------
    # Accessors / statistics
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Circuit name."""
        return self._name

    @property
    def input_names(self) -> tuple[str, ...]:
        """Primary-input names."""
        return self._input_names

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self._input_names)

    @property
    def gates(self) -> tuple[NandGate, ...]:
        """All gates in topological order."""
        return tuple(self._gates)

    @property
    def outputs(self) -> tuple[OutputSpec, ...]:
        """Primary-output specifications."""
        return tuple(self._outputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        """Primary-output names in declaration order."""
        return tuple(out.name for out in self._outputs)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    def gate_count(self) -> int:
        """Total number of NAND gates."""
        return len(self._gates)

    def max_fanin(self) -> int:
        """Largest gate fan-in in the network (0 for an empty network)."""
        if not self._gates:
            return 0
        return max(gate.fanin_count for gate in self._gates)

    def total_fanin_connections(self) -> int:
        """Sum of fan-ins over all gates (device count of the NAND rows)."""
        return sum(gate.fanin_count for gate in self._gates)

    def internal_gate_ids(self) -> set[int]:
        """Gates whose output feeds at least one other gate.

        Each of these needs one multi-level connection column on the
        crossbar.
        """
        internal: set[int] = set()
        for gate in self._gates:
            for signal in gate.fanins:
                if is_gate(signal):
                    internal.add(signal.gate_id)
        return internal

    def fanout_counts(self) -> dict[int, int]:
        """Number of gate-level fanouts for every gate id."""
        counts = {gate.gate_id: 0 for gate in self._gates}
        for gate in self._gates:
            for signal in gate.fanins:
                if is_gate(signal):
                    counts[signal.gate_id] += 1
        return counts

    def levels(self) -> dict[int, int]:
        """Logic level of every gate (literal-only gates are level 1)."""
        level: dict[int, int] = {}
        for gate in self._gates:
            depth = 1
            for signal in gate.fanins:
                if is_gate(signal):
                    depth = max(depth, level[signal.gate_id] + 1)
            level[gate.gate_id] = depth
        return level

    def depth(self) -> int:
        """Number of logic levels (0 for a gate-free network)."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    def evaluation_order(self) -> list[int]:
        """Gate ids in the order the crossbar evaluates them (topological)."""
        return [gate.gate_id for gate in self._gates]

    def __repr__(self) -> str:
        label = self._name or "<anonymous>"
        return (
            f"NandNetwork({label}: inputs={self.num_inputs}, "
            f"gates={self.gate_count()}, outputs={self.num_outputs}, "
            f"depth={self.depth()})"
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Sequence[int] | Sequence[bool]) -> list[bool]:
        """Evaluate all primary outputs under a complete input assignment."""
        if len(assignment) != len(self._input_names):
            raise SynthesisError(
                f"assignment has {len(assignment)} values, network expects "
                f"{len(self._input_names)}"
            )
        values = self.evaluate_gates(assignment)
        results = []
        for output in self._outputs:
            value = self._signal_value(output.driver, assignment, values)
            results.append((not value) if output.invert else value)
        return results

    def evaluate_gates(
        self, assignment: Sequence[int] | Sequence[bool]
    ) -> dict[int, bool]:
        """Evaluate every gate, returning ``{gate_id: value}``."""
        values: dict[int, bool] = {}
        for gate in self._gates:
            conjunction = True
            for signal in gate.fanins:
                if not self._signal_value(signal, assignment, values):
                    conjunction = False
                    break
            values[gate.gate_id] = not conjunction
        return values

    @staticmethod
    def _signal_value(signal: Signal, assignment, gate_values: dict[int, bool]) -> bool:
        if isinstance(signal, Literal):
            return signal.evaluate(assignment)
        return gate_values[signal.gate_id]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable netlist listing."""
        lines = [repr(self)]
        for gate in self._gates:
            fanin_text = ", ".join(s.label(self._input_names) for s in gate.fanins)
            lines.append(f"  g{gate.gate_id} = NAND({fanin_text})")
        for output in self._outputs:
            driver = output.driver.label(self._input_names)
            if output.invert:
                driver = f"~{driver}"
            lines.append(f"  {output.name} = {driver}")
        return "\n".join(lines)
