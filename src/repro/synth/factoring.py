"""Algebraic factoring of sum-of-products covers.

The paper's multi-level results are produced by forcing Berkeley ABC to a
NAND-gate library, which implicitly restructures the two-level cover into
a factored multi-level form.  We reproduce that restructuring with the
classical *quick factoring* recursion (the same one used by SIS's
``print_factor``): repeatedly divide the cover by its most frequent
literal, producing an AND/OR expression tree whose literal count is at
most the cover's and usually much smaller when products share literals.

The tree is technology-independent; :mod:`repro.synth.decompose` maps it
onto fan-in-bounded NAND gates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.boolean.cover import Cover
from repro.boolean.cube import NEGATIVE, POSITIVE, Cube
from repro.exceptions import SynthesisError


@dataclass(frozen=True)
class FactorLiteral:
    """Leaf of a factor tree: one input variable in one polarity."""

    input_index: int
    polarity: bool

    def literal_count(self) -> int:
        """Always 1 — used by the tree-size metric."""
        return 1

    def to_expression(self, input_names: Sequence[str] | None = None) -> str:
        """Readable form such as ``x2`` or ``~x2``."""
        name = (
            input_names[self.input_index]
            if input_names is not None
            else f"x{self.input_index + 1}"
        )
        return name if self.polarity else f"~{name}"


@dataclass(frozen=True)
class FactorAnd:
    """Internal AND node of a factor tree."""

    children: tuple["FactorNode", ...]

    def literal_count(self) -> int:
        """Total literal leaves below the node."""
        return sum(child.literal_count() for child in self.children)

    def to_expression(self, input_names: Sequence[str] | None = None) -> str:
        """Readable conjunction with parenthesised OR children."""
        parts = []
        for child in self.children:
            text = child.to_expression(input_names)
            if isinstance(child, FactorOr):
                text = f"({text})"
            parts.append(text)
        return " & ".join(parts)


@dataclass(frozen=True)
class FactorOr:
    """Internal OR node of a factor tree."""

    children: tuple["FactorNode", ...]

    def literal_count(self) -> int:
        """Total literal leaves below the node."""
        return sum(child.literal_count() for child in self.children)

    def to_expression(self, input_names: Sequence[str] | None = None) -> str:
        """Readable disjunction."""
        return " | ".join(child.to_expression(input_names) for child in self.children)


#: Union type of the factor-tree nodes.
FactorNode = FactorLiteral | FactorAnd | FactorOr


def _make_and(children: list[FactorNode]) -> FactorNode:
    flattened: list[FactorNode] = []
    for child in children:
        if isinstance(child, FactorAnd):
            flattened.extend(child.children)
        else:
            flattened.append(child)
    if len(flattened) == 1:
        return flattened[0]
    if not flattened:
        raise SynthesisError("AND node needs at least one child")
    return FactorAnd(tuple(flattened))


def _make_or(children: list[FactorNode]) -> FactorNode:
    flattened: list[FactorNode] = []
    for child in children:
        if isinstance(child, FactorOr):
            flattened.extend(child.children)
        else:
            flattened.append(child)
    if len(flattened) == 1:
        return flattened[0]
    if not flattened:
        raise SynthesisError("OR node needs at least one child")
    return FactorOr(tuple(flattened))


def cube_to_factor(cube: Cube) -> FactorNode:
    """Turn a single cube into an AND of literal leaves."""
    literals = [
        FactorLiteral(index, polarity) for index, polarity in cube.literals()
    ]
    if not literals:
        raise SynthesisError("cannot factor the universal cube into literals")
    return _make_and(list(literals))


def quick_factor(cover: Cover) -> FactorNode:
    """Quick-factor a non-trivial cover into an AND/OR tree.

    Raises
    ------
    SynthesisError
        For the constant covers (empty or tautological) — the callers
        handle constants before factoring.
    """
    if cover.is_empty() or cover.has_full_dont_care():
        raise SynthesisError("cannot factor a constant cover")
    return _factor_recursive(cover)


def _factor_recursive(cover: Cover) -> FactorNode:
    cubes = list(cover.cubes)
    if len(cubes) == 1:
        return cube_to_factor(cubes[0])

    best = _most_frequent_literal(cover)
    if best is None:
        # No literal shared by two or more cubes: plain OR of products.
        return _make_or([cube_to_factor(cube) for cube in cubes])

    variable, polarity = best
    literal_value = POSITIVE if polarity else NEGATIVE

    quotient_cubes = []
    remainder_cubes = []
    for cube in cubes:
        if cube[variable] == literal_value:
            quotient_cubes.append(cube.expand_variable(variable))
        else:
            remainder_cubes.append(cube)

    quotient = Cover(cover.num_inputs, quotient_cubes)
    literal_leaf = FactorLiteral(variable, polarity)
    if quotient.has_full_dont_care():
        # The literal itself is one of the products: x + x·rest = x.
        factored_quotient: FactorNode = literal_leaf
    else:
        factored_quotient = _make_and([literal_leaf, _factor_recursive(quotient)])

    if not remainder_cubes:
        return factored_quotient
    remainder = Cover(cover.num_inputs, remainder_cubes)
    return _make_or([factored_quotient, _factor_recursive(remainder)])


def _most_frequent_literal(cover: Cover) -> tuple[int, bool] | None:
    """The literal occurring in the most cubes, if it occurs at least twice.

    Ties are broken deterministically towards lower input indices and the
    positive polarity so factoring is reproducible.
    """
    counts: dict[tuple[int, bool], int] = {}
    for cube in cover:
        for index, polarity in cube.literals():
            counts[(index, polarity)] = counts.get((index, polarity), 0) + 1
    if not counts:
        return None
    best_key = None
    best_count = 1
    for (index, polarity), count in sorted(counts.items()):
        if count > best_count:
            best_count = count
            best_key = (index, polarity)
    return best_key


def factor_tree_literals(node: FactorNode) -> int:
    """Literal count of a factor tree (the classic factored-form metric)."""
    return node.literal_count()


def factored_expression(cover: Cover, input_names: Sequence[str] | None = None) -> str:
    """Convenience: quick-factor a cover and render it as text."""
    return quick_factor(cover).to_expression(input_names)
