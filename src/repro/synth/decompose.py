"""Mapping covers and factor trees onto fan-in-bounded NAND networks.

The paper constrains ABC to NAND gates "which have fan-in sizes 2 to n
that is determined according to input size of a given logic function";
this module provides the equivalent mapping machinery:

* :func:`add_wide_nand` / :func:`add_wide_and` — build a NAND (or AND) of
  arbitrarily many signals while respecting a maximum gate fan-in, by
  chunking into a tree;
* :func:`map_cover_two_level_nand` — the direct NAND–NAND decomposition
  (one NAND per multi-literal product, single-literal products folded
  into the output NAND as complemented literals, exactly as in Fig. 5 of
  the paper);
* :func:`map_factor_tree` — polarity-aware mapping of a factored AND/OR
  tree onto NAND gates with memoised sub-tree sharing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.boolean.cover import Cover
from repro.exceptions import SynthesisError
from repro.synth.factoring import (
    FactorAnd,
    FactorLiteral,
    FactorNode,
    FactorOr,
    quick_factor,
)
from repro.synth.network import NandNetwork
from repro.synth.signals import GateRef, Literal, Signal


def add_wide_nand(
    network: NandNetwork, signals: Sequence[Signal], max_fanin: int
) -> GateRef:
    """NAND of any number of signals, splitting to respect ``max_fanin``.

    A NAND of more than ``max_fanin`` inputs is built as
    ``NAND(AND(chunk₁), AND(chunk₂), …)`` where each chunk AND is itself a
    fan-in-bounded NAND followed by an inverter.
    """
    if max_fanin < 2:
        raise SynthesisError("max_fanin must be at least 2")
    signals = list(signals)
    if not signals:
        raise SynthesisError("add_wide_nand needs at least one signal")
    if len(signals) <= max_fanin:
        return network.add_gate(signals)
    chunk_signals: list[Signal] = []
    for start in range(0, len(signals), max_fanin):
        chunk = signals[start : start + max_fanin]
        if len(chunk) == 1:
            chunk_signals.append(chunk[0])
        else:
            chunk_signals.append(add_wide_and(network, chunk, max_fanin))
    return add_wide_nand(network, chunk_signals, max_fanin)


def add_wide_and(
    network: NandNetwork, signals: Sequence[Signal], max_fanin: int
) -> GateRef:
    """AND of any number of signals as ``INV(NAND(...))`` with fan-in bound."""
    nand_ref = add_wide_nand(network, signals, max_fanin)
    return network.add_gate([nand_ref])


def invert_signal(network: NandNetwork, signal: Signal) -> Signal:
    """Complement of a signal: free for literals, one gate for gate outputs."""
    if isinstance(signal, Literal):
        return signal.inverted()
    return network.add_gate([signal])


# ----------------------------------------------------------------------
# Direct two-level NAND-NAND decomposition
# ----------------------------------------------------------------------
def map_cover_two_level_nand(
    network: NandNetwork,
    cover: Cover,
    output_name: str,
    *,
    max_fanin: int,
    register_output: bool = True,
) -> tuple[Signal, bool]:
    """Map a cover as NAND-of-NANDs and (optionally) register the output.

    Returns ``(driver, invert)`` — the signal driving the output and
    whether the output latch must take its complement.

    Single-literal products are folded into the final NAND as complemented
    literals (no gate), reproducing the structure of the paper's Fig. 5
    example where ``x1 + x2 + x3 + x4 + x5x6x7x8`` needs only two NAND
    gates.
    """
    if cover.is_empty():
        driver, invert = _constant_driver(network, value=False)
    elif cover.has_full_dont_care():
        driver, invert = _constant_driver(network, value=True)
    else:
        product_complements: list[Signal] = []
        for cube in cover:
            literals = [
                Literal(index, polarity) for index, polarity in cube.literals()
            ]
            if len(literals) == 1:
                # NAND(x) == ~x, and input complements are free.
                product_complements.append(literals[0].inverted())
            else:
                product_complements.append(
                    add_wide_nand(network, literals, max_fanin)
                )
        if len(product_complements) == 1:
            # f is a single product: its complement signal drives the output
            # inverted (the output latch provides the inversion for free).
            driver, invert = product_complements[0], True
        else:
            driver = add_wide_nand(network, product_complements, max_fanin)
            invert = False
    driver, invert = _materialise_literal_driver(network, driver, invert)
    if register_output:
        network.add_output(output_name, driver, invert=invert)
    return driver, invert


def _materialise_literal_driver(
    network: NandNetwork, driver: Signal, invert: bool
) -> tuple[Signal, bool]:
    """Ensure an output is driven by a gate row, never by a bare literal.

    The multi-level crossbar taps outputs from an evaluated gate row; an
    output that happens to equal a single literal therefore gets a
    one-input NAND (inverter) row, and the output latch un-inverts it.
    """
    if isinstance(driver, Literal):
        return network.add_gate([driver]), not invert
    return driver, invert


def _constant_driver(network: NandNetwork, *, value: bool) -> tuple[Signal, bool]:
    """A constant output built from an always-true NAND (``NAND(x, x̄) = 1``).

    Constant outputs never occur in the paper's benchmarks but the mapper
    must not crash on them.
    """
    if network.num_inputs == 0:
        raise SynthesisError("cannot build a constant without any input")
    always_one = network.add_gate([Literal(0, True), Literal(0, False)])
    return always_one, not value


# ----------------------------------------------------------------------
# Factored-form mapping
# ----------------------------------------------------------------------
class _FactorMapper:
    """Polarity-aware mapper from factor trees to NAND gates."""

    def __init__(self, network: NandNetwork, max_fanin: int):
        self._network = network
        self._max_fanin = max_fanin
        self._cache: dict[tuple[int, bool], Signal] = {}

    def map(self, node: FactorNode, *, inverted: bool) -> Signal:
        """Return a signal computing ``node`` (or its complement)."""
        key = (id(node), inverted)
        if key in self._cache:
            return self._cache[key]
        signal = self._map_uncached(node, inverted)
        self._cache[key] = signal
        return signal

    def _map_uncached(self, node: FactorNode, inverted: bool) -> Signal:
        if isinstance(node, FactorLiteral):
            literal = Literal(node.input_index, node.polarity)
            return literal.inverted() if inverted else literal
        if isinstance(node, FactorAnd):
            children = [self.map(child, inverted=False) for child in node.children]
            nand_ref = add_wide_nand(self._network, children, self._max_fanin)
            if inverted:
                return nand_ref
            return self._network.add_gate([nand_ref])
        if isinstance(node, FactorOr):
            children = [self.map(child, inverted=True) for child in node.children]
            or_ref = add_wide_nand(self._network, children, self._max_fanin)
            if inverted:
                return self._network.add_gate([or_ref])
            return or_ref
        raise SynthesisError(f"unknown factor node type {type(node)!r}")


def map_factor_tree(
    network: NandNetwork,
    tree: FactorNode,
    output_name: str,
    *,
    max_fanin: int,
    register_output: bool = True,
) -> tuple[Signal, bool]:
    """Map a factor tree onto NAND gates and register the output.

    The output polarity is chosen to avoid a final inverter whenever
    possible (the crossbar's output latch provides both polarities).
    """
    mapper = _FactorMapper(network, max_fanin)
    if isinstance(tree, FactorLiteral):
        driver: Signal = network.add_gate([Literal(tree.input_index, tree.polarity)])
        invert = True
    elif isinstance(tree, FactorAnd):
        # Compute the NAND (cheaper) and let the output latch invert it.
        driver = mapper.map(tree, inverted=True)
        invert = True
    else:
        driver = mapper.map(tree, inverted=False)
        invert = False
    if register_output:
        network.add_output(output_name, driver, invert=invert)
    return driver, invert


def map_cover_factored(
    network: NandNetwork,
    cover: Cover,
    output_name: str,
    *,
    max_fanin: int,
    register_output: bool = True,
) -> tuple[Signal, bool]:
    """Quick-factor a cover and map the factored form onto NAND gates."""
    if cover.is_empty():
        driver, invert = _constant_driver(network, value=False)
    elif cover.has_full_dont_care():
        driver, invert = _constant_driver(network, value=True)
    else:
        tree = quick_factor(cover)
        driver, invert = map_factor_tree(
            network, tree, output_name, max_fanin=max_fanin, register_output=False
        )
    driver, invert = _materialise_literal_driver(network, driver, invert)
    if register_output:
        network.add_output(output_name, driver, invert=invert)
    return driver, invert
